"""The tracer — transparent probes over an iterator tree.

:meth:`Tracer.instrument` walks a translated expression tree and wraps
every :class:`~repro.runtime.iterator.IconIterator` child in a
:class:`TracedIterator`.  Probes are semantically transparent: they
delegate ``iterate`` and re-yield every result (including
:class:`~repro.runtime.failure.Suspension` envelopes and reference
results), emitting events as iteration enters, produces, resumes, and
fails.  Instrumentation happens *after* transformation — the "monitoring
within a transformational framework" of the paper's future work — so the
runtime itself carries zero monitoring overhead when tracing is off.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List

from ..runtime.failure import Suspension
from ..runtime.iterator import IconIterator
from .events import Event, EventKind


class TracedIterator(IconIterator):
    """A transparent probe around one node."""

    __slots__ = ("target", "tracer", "label", "depth")

    def __init__(
        self, target: IconIterator, tracer: "Tracer", label: str, depth: int
    ) -> None:
        super().__init__()
        self.target = target
        self.tracer = tracer
        self.label = label
        self.depth = depth

    def iterate(self) -> Iterator[Any]:
        emit = self.tracer.emit
        emit(Event(EventKind.ENTER, self.label, self.depth))
        produced = False
        for result in self.target.iterate():
            if produced:
                emit(Event(EventKind.RESUME, self.label, self.depth))
            if isinstance(result, Suspension):
                emit(
                    Event(
                        EventKind.SUSPEND, self.label, self.depth, result.value
                    )
                )
            else:
                emit(Event(EventKind.PRODUCE, self.label, self.depth, result))
            produced = True
            yield result
        emit(Event(EventKind.FAIL, self.label, self.depth))

    def __repr__(self) -> str:
        return f"TracedIterator({self.label})"


#: Node attributes that may hold child iterator nodes (union over the
#: runtime's combinator/control classes).
_CHILD_SLOTS = (
    "operands",
    "expr",
    "left",
    "right",
    "cond",
    "then",
    "orelse",
    "body",
    "final",
    "gen",
    "limit",
    "subject",
    "index",
    "low",
    "high",
    "start",
    "stop",
    "step",
    "target",
    "transmit",
    "do_clause",
    "args",
    "callee",
    "items",
    "value_iterator",
    "default",
    "branches",
)


class Tracer:
    """Collects events from an instrumented tree.

    ``sink`` (optional) receives each event as it happens (live
    monitoring); events are also accumulated in :attr:`events`.
    ``max_events`` bounds the buffer so tracing a long-running pipeline
    does not exhaust memory (oldest events are dropped).
    """

    def __init__(
        self,
        sink: Callable[[Event], None] | None = None,
        max_events: int = 100_000,
    ) -> None:
        self.sink = sink
        self.max_events = max_events
        self.events: List[Event] = []

    # -- collection -----------------------------------------------------------

    def emit(self, event: Event) -> None:
        self.events.append(event)
        if len(self.events) > self.max_events:
            del self.events[: len(self.events) // 2]
        if self.sink is not None:
            self.sink(event)

    def clear(self) -> None:
        self.events.clear()

    def lifecycle(self):
        """Context manager: also collect pipe lifecycle events
        (start/retry/cancel/timeout/exhaust) emitted by the supervision
        layer while the block runs."""
        from .events import lifecycle_sink

        return lifecycle_sink(self.emit)

    # -- analysis --------------------------------------------------------------

    def counts(self) -> dict:
        """Event totals by kind."""
        out = {kind: 0 for kind in EventKind.ALL}
        for event in self.events:
            out[event.kind] += 1
        return out

    def per_node(self) -> dict:
        """``{node label: {kind: count}}`` — the hot-spot view."""
        out: dict = {}
        for event in self.events:
            out.setdefault(event.node, {k: 0 for k in EventKind.ALL})
            out[event.node][event.kind] += 1
        return out

    def batch_stats(self) -> dict:
        """Per-pipe batched-transport summary from collected ``batch``
        events: ``{node: {flushes, items, mean_batch, mean_occupancy}}``.

        ``mean_batch`` is the realized coalescing factor (how many
        elements each flush actually moved); ``mean_occupancy`` is the
        channel depth observed right after each flush — together they
        show whether a pipeline is throughput-bound (large batches, deep
        queue) or latency-bound (linger flushes, shallow queue)."""
        out: dict = {}
        for event in self.events:
            if event.kind != EventKind.BATCH or not isinstance(event.value, dict):
                continue
            stats = out.setdefault(
                event.node, {"flushes": 0, "items": 0, "occupancy": 0}
            )
            stats["flushes"] += 1
            stats["items"] += event.value.get("size", 0)
            stats["occupancy"] += event.value.get("queued", 0)
        for stats in out.values():
            flushes = stats["flushes"]
            stats["mean_batch"] = stats["items"] / flushes
            stats["mean_occupancy"] = stats.pop("occupancy") / flushes
        return out

    def process_stats(self) -> dict:
        """Per-pipe crash-isolation summary from collected lifecycle
        events: ``{node: {spawns, losses, degraded, exitcodes, reasons}}``.

        ``spawns`` counts child processes forked for the node, ``losses``
        counts watchdog firings (with the observed ``exitcodes``), and
        ``degraded`` counts process requests that fell back to the thread
        backend (with the degradation ``reasons``) — together they show
        whether a pipeline actually ran isolated, how often workers were
        lost, and why any degradation happened."""
        kinds = (EventKind.SPAWN, EventKind.WORKER_LOST, EventKind.DEGRADED)
        out: dict = {}
        for event in self.events:
            if event.kind not in kinds:
                continue
            stats = out.setdefault(
                event.node,
                {
                    "spawns": 0,
                    "losses": 0,
                    "degraded": 0,
                    "exitcodes": [],
                    "reasons": [],
                },
            )
            if event.kind == EventKind.SPAWN:
                stats["spawns"] += 1
            elif event.kind == EventKind.WORKER_LOST:
                stats["losses"] += 1
                if isinstance(event.value, dict):
                    stats["exitcodes"].append(event.value.get("exitcode"))
            else:
                stats["degraded"] += 1
                stats["reasons"].append(event.value)
        return out

    def net_stats(self) -> dict:
        """Per-node network-tier summary from collected lifecycle events:
        ``{node: {connects, sessions, losses, reasons, addresses}}``.

        ``connects`` counts client connections opened to a generator
        server (with the ``addresses`` dialed), ``sessions`` counts
        server-side sessions accepted for the node, and ``losses``
        counts client watchdog firings (with the loss ``reasons``) —
        together they show whether a pipeline actually ran remote, how
        often its connections died, and why."""
        kinds = (EventKind.NET_CONNECT, EventKind.NET_SESSION, EventKind.NET_LOST)
        out: dict = {}
        for event in self.events:
            if event.kind not in kinds:
                continue
            stats = out.setdefault(
                event.node,
                {
                    "connects": 0,
                    "sessions": 0,
                    "losses": 0,
                    "reasons": [],
                    "addresses": [],
                },
            )
            value = event.value if isinstance(event.value, dict) else {}
            if event.kind == EventKind.NET_CONNECT:
                stats["connects"] += 1
                if "address" in value:
                    stats["addresses"].append(value["address"])
            elif event.kind == EventKind.NET_SESSION:
                stats["sessions"] += 1
            else:
                stats["losses"] += 1
                if "reason" in value:
                    stats["reasons"].append(value["reason"])
        return out

    def async_stats(self) -> dict:
        """Per-node async-tier summary from collected lifecycle events:
        ``{node: {workers, sessions, names, peers}}``.

        ``workers`` counts pipe bodies spawned as tasks on the shared
        event loop (``backend="async"``, payload ``transport="loop"``)
        and ``sessions`` counts event-loop server admissions
        (:class:`~repro.net.aserver.AsyncGeneratorServer`, payload
        carries ``peer``) — together they show how much of a pipeline
        actually ran on the coroutine tier and who connected."""
        out: dict = {}
        for event in self.events:
            if event.kind != EventKind.ASYNC_SESSION:
                continue
            stats = out.setdefault(
                event.node,
                {"workers": 0, "sessions": 0, "names": [], "peers": []},
            )
            value = event.value if isinstance(event.value, dict) else {}
            if "peer" in value:
                stats["sessions"] += 1
                stats["peers"].append(value["peer"])
            else:
                stats["workers"] += 1
            if "name" in value:
                stats["names"].append(value["name"])
        return out

    def health_stats(self) -> dict:
        """Per-node overload/deadline summary from collected lifecycle
        events: ``{node: {deadline_expired, deadline_propagated, shed,
        breaker_opens, breaker_probes, breaker_closes, wheres,
        addresses}}``.

        ``deadline_expired`` counts budget expiries (with the ``wheres``
        they fired — ``start``/``take``/``producer``/``session``),
        ``deadline_propagated`` counts budgets shipped across a
        process/socket boundary, ``shed`` counts server-side admission
        rejections, and the ``breaker_*`` counters trace the client
        circuit breaker's open/probe/close transitions (with the
        ``addresses`` involved) — together they show whether abandoned
        work was actively reclaimed and how the stack behaved under
        overload."""
        kinds = {
            EventKind.DEADLINE_EXPIRED: "deadline_expired",
            EventKind.DEADLINE_PROPAGATED: "deadline_propagated",
            EventKind.SHED: "shed",
            EventKind.BREAKER_OPEN: "breaker_opens",
            EventKind.BREAKER_PROBE: "breaker_probes",
            EventKind.BREAKER_CLOSE: "breaker_closes",
        }
        out: dict = {}
        for event in self.events:
            counter = kinds.get(event.kind)
            if counter is None:
                continue
            stats = out.setdefault(
                event.node,
                {
                    "deadline_expired": 0,
                    "deadline_propagated": 0,
                    "shed": 0,
                    "breaker_opens": 0,
                    "breaker_probes": 0,
                    "breaker_closes": 0,
                    "wheres": [],
                    "addresses": [],
                },
            )
            stats[counter] += 1
            value = event.value if isinstance(event.value, dict) else {}
            if event.kind == EventKind.DEADLINE_EXPIRED and "where" in value:
                stats["wheres"].append(value["where"])
            if "address" in value:
                stats["addresses"].append(value["address"])
        return out

    def cluster_stats(self) -> dict:
        """Per-pool cluster-tier summary from collected lifecycle events:
        ``{node: {failovers, reroutes, steals, transitions, skipped,
        stolen_keys, by_address}}``.

        ``failovers`` counts lost streams that reconnected to a
        *different* replica (with the ``transitions`` — ``(from, to)``
        address pairs — they made), ``reroutes`` counts candidates
        routing passed over without a session (with the ``skipped``
        addresses), and ``steals`` counts DataParallel chunks re-run off
        a dead or shed replica (with the ``stolen_keys``) — together
        they show how a replicated fleet actually recovered: which
        replicas were avoided, where lost streams landed, and which
        chunks had to move.

        ``by_address`` breaks every counter down per replica:
        ``{address: {failovers_out, failovers_in, reroutes, steals}}``
        — streams that fled the address, streams that landed on it
        during a failover, dials routed around it, and chunks stolen
        off it.  A churn test asserts *which* replica's death caused
        *which* recovery with this, not just the totals."""
        kinds = {
            EventKind.FAILOVER: "failovers",
            EventKind.REROUTE: "reroutes",
            EventKind.STEAL: "steals",
        }
        out: dict = {}

        def _per_address(stats: dict, address: Any, counter: str) -> None:
            if address is None:
                return
            if isinstance(address, list):
                address = tuple(address)
            entry = stats["by_address"].setdefault(
                address,
                {
                    "failovers_out": 0,
                    "failovers_in": 0,
                    "reroutes": 0,
                    "steals": 0,
                },
            )
            entry[counter] += 1

        for event in self.events:
            counter = kinds.get(event.kind)
            if counter is None:
                continue
            stats = out.setdefault(
                event.node,
                {
                    "failovers": 0,
                    "reroutes": 0,
                    "steals": 0,
                    "transitions": [],
                    "skipped": [],
                    "stolen_keys": [],
                    "by_address": {},
                },
            )
            stats[counter] += 1
            value = event.value if isinstance(event.value, dict) else {}
            if event.kind == EventKind.FAILOVER:
                stats["transitions"].append((value.get("from"), value.get("to")))
                _per_address(stats, value.get("from"), "failovers_out")
                _per_address(stats, value.get("to"), "failovers_in")
            elif event.kind == EventKind.REROUTE:
                stats["skipped"].append(value.get("skipped"))
                _per_address(stats, value.get("skipped"), "reroutes")
            else:
                stats["stolen_keys"].append(value.get("key"))
                _per_address(stats, value.get("address"), "steals")
        return out

    def membership_stats(self) -> dict:
        """Per-pool membership summary from collected lifecycle events:
        ``{node: {joins, leaves, ups, downs, joined, left, went_down,
        came_up, sources}}``.

        ``joins``/``leaves`` count fleet changes (live ``add`` /
        ``remove`` — a registry update, a gossiped replacement, an API
        call) with the ``joined``/``left`` addresses and the
        ``sources`` they came from; ``downs``/``ups`` count the health
        prober's verdict transitions with the ``went_down``/``came_up``
        addresses.  The churn acceptance check reads exactly this: a
        SIGKILLed replica must show in ``went_down`` and its gossiped
        replacement in ``joined``, on the same pool node, while the
        stream never broke."""
        kinds = {
            EventKind.MEMBER_JOIN: ("joins", "joined"),
            EventKind.MEMBER_LEAVE: ("leaves", "left"),
            EventKind.MEMBER_UP: ("ups", "came_up"),
            EventKind.MEMBER_DOWN: ("downs", "went_down"),
        }
        out: dict = {}
        for event in self.events:
            entry = kinds.get(event.kind)
            if entry is None:
                continue
            counter, roster = entry
            stats = out.setdefault(
                event.node,
                {
                    "joins": 0,
                    "leaves": 0,
                    "ups": 0,
                    "downs": 0,
                    "joined": [],
                    "left": [],
                    "came_up": [],
                    "went_down": [],
                    "sources": [],
                },
            )
            stats[counter] += 1
            value = event.value if isinstance(event.value, dict) else {}
            address = value.get("address")
            if address is not None:
                stats[roster].append(
                    tuple(address) if isinstance(address, list) else address
                )
            source = value.get("source")
            if source is not None and source not in stats["sources"]:
                stats["sources"].append(source)
        return out

    def compile_stats(self) -> dict:
        """Per-unit compile-target summary from collected ``compile``
        events: ``{unit: {compiles, optimized, lowered, fallbacks}}``.

        The optimizing compile target (:mod:`repro.lang.optimize`) emits
        one lifecycle event per translation unit it considers;
        ``optimized`` counts the units it actually lowered to native
        Python generators, ``lowered`` accumulates the shape names it
        handled natively, and ``fallbacks`` the shapes it deferred to
        the interpreted runtime — together they show how much of a
        program the optimizer covered and what kept the rest on the
        general path."""
        out: dict = {}
        for event in self.events:
            if event.kind != EventKind.COMPILE:
                continue
            stats = out.setdefault(
                event.node,
                {"compiles": 0, "optimized": 0, "lowered": [], "fallbacks": []},
            )
            stats["compiles"] += 1
            value = event.value if isinstance(event.value, dict) else {}
            if value.get("optimized"):
                stats["optimized"] += 1
            for shape in value.get("lowered", ()):
                if shape not in stats["lowered"]:
                    stats["lowered"].append(shape)
            for shape in value.get("fallbacks", ()):
                if shape not in stats["fallbacks"]:
                    stats["fallbacks"].append(shape)
        for stats in out.values():
            stats["lowered"].sort()
            stats["fallbacks"].sort()
        return out

    def transcript(self, limit: int | None = None) -> str:
        """A readable, indented trace of the evaluation."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(event) for event in events)

    # -- instrumentation ----------------------------------------------------------

    def instrument(self, node: IconIterator, depth: int = 0) -> IconIterator:
        """Wrap *node* and (recursively, in place) its children."""
        if isinstance(node, TracedIterator):
            return node
        self._instrument_children(node, depth + 1)
        return TracedIterator(node, self, type(node).__name__, depth)

    def _instrument_children(self, node: IconIterator, depth: int) -> None:
        for slot in _CHILD_SLOTS:
            try:
                child = getattr(node, slot)
            except AttributeError:
                continue
            wrapped = self._wrap_value(child, depth)
            if wrapped is not child:
                try:
                    setattr(node, slot, wrapped)
                except AttributeError:
                    pass  # read-only slot: leave the child untraced

    def _wrap_value(self, child: Any, depth: int) -> Any:
        if isinstance(child, TracedIterator):
            return child
        if isinstance(child, IconIterator):
            return self.instrument(child, depth)
        if isinstance(child, tuple):
            wrapped = tuple(self._wrap_value(item, depth) for item in child)
            if any(w is not o for w, o in zip(wrapped, child)):
                return wrapped
            return child
        if isinstance(child, list):
            return [self._wrap_value(item, depth) for item in child]
        return child


def trace(node: IconIterator, sink: Callable[[Event], None] | None = None):
    """Convenience: instrument *node*, returning ``(wrapped, tracer)``."""
    tracer = Tracer(sink=sink)
    return tracer.instrument(node), tracer
