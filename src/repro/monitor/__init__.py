"""Execution monitoring for goal-directed programs (paper §IX).

The paper closes with "program monitoring and debugging within a
transformational framework is an area to be further explored."  This
package explores it: because translated programs are *trees of iterator
nodes*, monitoring is a post-transformation pass that wraps each node in
a transparent probe — no changes to the runtime, no overhead when off.

>>> from repro.monitor import Tracer
>>> from repro.lang import JuniconInterpreter
>>> interp = JuniconInterpreter()
>>> tracer = Tracer()
>>> node = tracer.instrument(interp.expression("(1 to 2) * (3 to 4)"))
>>> list(node)
[3, 4, 6, 8]
>>> tracer.counts()["produce"]
16
"""

from .events import (
    Event,
    EventKind,
    add_lifecycle_sink,
    emit_lifecycle,
    lifecycle_enabled,
    lifecycle_sink,
    remove_lifecycle_sink,
)
from .tracer import TracedIterator, Tracer, trace

__all__ = [
    "Event",
    "EventKind",
    "TracedIterator",
    "Tracer",
    "add_lifecycle_sink",
    "emit_lifecycle",
    "lifecycle_enabled",
    "lifecycle_sink",
    "remove_lifecycle_sink",
    "trace",
]
