"""Icon operator semantics over the iterator kernel (paper Section II.A).

Two layers live here:

* **value functions** (module namespace ``ops``): pure functions over
  dereferenced operand values that return a result or :data:`FAIL`.  Icon's
  comparisons *return the right operand* on success so they chain
  (``1 <= x <= 10``), and coerce strings to numbers for numeric contexts.

* **iterator nodes**: :class:`IconOperation` maps a value function over the
  cross product of its operand generators (the implicit composition of
  nested generators), and specialised nodes implement the reference-
  sensitive operators — assignment (plain, augmented, reversible, swap),
  the null tests ``/x`` and ``\\x`` (which yield the *variable* so that
  ``/x := 5`` works), and explicit dereference ``.x``.
"""

from __future__ import annotations

import math
import random as _random_module
from typing import Any, Callable, Iterator

from ..errors import IconTypeError, IconValueError
from .failure import FAIL
from .iterator import IconIterator, as_iterator
from .refs import Ref, assign, deref
from .types import Cset, need_cset

# ---------------------------------------------------------------------------
# Coercion (Icon's implicit type conversions).
# ---------------------------------------------------------------------------


def need_number(value: Any) -> int | float:
    """Coerce to a number: numbers pass; numeric strings convert."""
    if isinstance(value, bool):
        raise IconTypeError("numeric expected, got boolean")
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        text = value.strip()
        try:
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                raise IconTypeError(f"numeric expected, got {value!r}") from None
    raise IconTypeError(f"numeric expected, got {type(value).__name__}")


def need_integer(value: Any) -> int:
    """Coerce to an integer; floats must be integral (Icon error 101)."""
    number = need_number(value)
    if isinstance(number, float):
        if not number.is_integer():
            raise IconTypeError(f"integer expected, got {value!r}")
        return int(number)
    return number


def need_string(value: Any) -> str:
    """Coerce to a string: strings pass; numbers and csets convert."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        raise IconTypeError("string expected, got boolean")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, Cset):
        return value.string()
    raise IconTypeError(f"string expected, got {type(value).__name__}")


# ---------------------------------------------------------------------------
# Arithmetic value functions.
# ---------------------------------------------------------------------------


def plus(a: Any, b: Any) -> Any:
    return need_number(a) + need_number(b)


def minus(a: Any, b: Any) -> Any:
    return need_number(a) - need_number(b)


def times(a: Any, b: Any) -> Any:
    return need_number(a) * need_number(b)


def divide(a: Any, b: Any) -> Any:
    """Icon ``/``: truncating division for integers, float otherwise."""
    x, y = need_number(a), need_number(b)
    if y == 0:
        raise IconValueError("division by zero")
    if isinstance(x, int) and isinstance(y, int):
        quotient = abs(x) // abs(y)
        return quotient if (x >= 0) == (y >= 0) else -quotient
    return x / y


def modulo(a: Any, b: Any) -> Any:
    """Icon ``%``: remainder with the sign of the dividend (C-style)."""
    x, y = need_number(a), need_number(b)
    if y == 0:
        raise IconValueError("remainder by zero")
    remainder = math.fmod(x, y)
    if isinstance(x, int) and isinstance(y, int):
        return int(remainder)
    return remainder


def power(a: Any, b: Any) -> Any:
    x, y = need_number(a), need_number(b)
    if isinstance(x, int) and isinstance(y, int) and y < 0:
        return float(x) ** y
    return x ** y


def negate(a: Any) -> Any:
    return -need_number(a)


def numerate(a: Any) -> Any:
    """Unary ``+``: numeric coercion (and validation)."""
    return need_number(a)


# ---------------------------------------------------------------------------
# Comparison value functions — succeed with the *right* operand, or FAIL.
# ---------------------------------------------------------------------------


def _numeric_compare(test: Callable[[Any, Any], bool]) -> Callable[[Any, Any], Any]:
    def compare(a: Any, b: Any) -> Any:
        x, y = need_number(a), need_number(b)
        return y if test(x, y) else FAIL

    return compare


num_lt = _numeric_compare(lambda x, y: x < y)
num_le = _numeric_compare(lambda x, y: x <= y)
num_eq = _numeric_compare(lambda x, y: x == y)
num_ne = _numeric_compare(lambda x, y: x != y)
num_ge = _numeric_compare(lambda x, y: x >= y)
num_gt = _numeric_compare(lambda x, y: x > y)


def _string_compare(test: Callable[[str, str], bool]) -> Callable[[Any, Any], Any]:
    def compare(a: Any, b: Any) -> Any:
        x, y = need_string(a), need_string(b)
        return y if test(x, y) else FAIL

    return compare


lex_lt = _string_compare(lambda x, y: x < y)      # <<
lex_le = _string_compare(lambda x, y: x <= y)     # <<=
lex_eq = _string_compare(lambda x, y: x == y)     # ==
lex_ne = _string_compare(lambda x, y: x != y)     # ~==
lex_ge = _string_compare(lambda x, y: x >= y)     # >>=
lex_gt = _string_compare(lambda x, y: x > y)      # >>


def value_eq(a: Any, b: Any) -> Any:
    """``===``: same value — identity for mutables, equality otherwise."""
    if _same_value(a, b):
        return b
    return FAIL


def value_ne(a: Any, b: Any) -> Any:
    """``~===``: not the same value."""
    if _same_value(a, b):
        return FAIL
    return b


def _same_value(a: Any, b: Any) -> bool:
    if isinstance(a, (list, dict, set)) or isinstance(b, (list, dict, set)):
        return a is b
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        return False
    return a == b


# ---------------------------------------------------------------------------
# Concatenation and set-algebra value functions.
# ---------------------------------------------------------------------------


def concat(a: Any, b: Any) -> str:
    """``||`` string concatenation (with coercion)."""
    return need_string(a) + need_string(b)


def list_concat(a: Any, b: Any) -> list:
    """``|||`` list concatenation."""
    if not isinstance(a, list) or not isinstance(b, list):
        raise IconTypeError("list expected for |||")
    return a + b


def union(a: Any, b: Any) -> Any:
    """``++``: cset/set union."""
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        return set(a) | set(b)
    return need_cset(a).union(need_cset(b))


def difference(a: Any, b: Any) -> Any:
    """``--``: cset/set difference."""
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        return set(a) - set(b)
    return need_cset(a).difference(need_cset(b))


def intersection(a: Any, b: Any) -> Any:
    """``**``: cset/set intersection."""
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        return set(a) & set(b)
    return need_cset(a).intersection(need_cset(b))


def complement(a: Any) -> Cset:
    """Unary ``~``: cset complement over the Latin-1 universe."""
    return need_cset(a).complement()


# ---------------------------------------------------------------------------
# Size, random, tab-matching helpers.
# ---------------------------------------------------------------------------


def size(a: Any) -> int:
    """Unary ``*``: size of a string/list/table/set/cset.

    Co-expressions override this via their ``icon_size`` hook (number of
    results produced so far, per Icon).
    """
    hook = getattr(a, "icon_size", None)
    if hook is not None:
        return hook()
    if isinstance(a, (str, list, dict, set, frozenset, tuple, Cset)):
        return len(a)
    if isinstance(a, (int, float)):
        return len(need_string(a))
    raise IconTypeError(f"size of {type(a).__name__} is undefined")


#: Process-wide random stream for ``?`` (reseed via :func:`seed_random`,
#: Icon's ``&random := n``).
_random = _random_module.Random()
_random_seed = 0


def seed_random(seed: int) -> None:
    """Reseed the ``?`` operator's stream (Icon ``&random := n``)."""
    global _random_seed
    _random_seed = seed
    _random.seed(seed)


def current_random_seed() -> int:
    """The last value assigned to ``&random`` (its readable face)."""
    return _random_seed


def random_of(a: Any) -> Any:
    """Unary ``?``: random integer in 1..x, or random element/character."""
    if isinstance(a, bool):
        raise IconTypeError("? of boolean is undefined")
    if isinstance(a, int):
        if a < 0:
            raise IconValueError("? of negative integer")
        if a == 0:
            return _random.random()
        return _random.randint(1, a)
    if isinstance(a, float):
        return _random.uniform(0.0, a)
    if isinstance(a, str):
        if not a:
            return FAIL
        return a[_random.randrange(len(a))]
    if isinstance(a, list):
        if not a:
            return FAIL
        return a[_random.randrange(len(a))]
    if isinstance(a, (set, frozenset, Cset)):
        items = sorted(a) if isinstance(a, Cset) else list(a)
        if not items:
            return FAIL
        return items[_random.randrange(len(items))]
    if isinstance(a, dict):
        if not a:
            return FAIL
        keys = list(a)
        return a[keys[_random.randrange(len(keys))]]
    raise IconTypeError(f"? of {type(a).__name__} is undefined")


# ---------------------------------------------------------------------------
# Operator registries (used by the interpreter and the code generator).
# ---------------------------------------------------------------------------

BINARY_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": plus,
    "-": minus,
    "*": times,
    "/": divide,
    "%": modulo,
    "^": power,
    "<": num_lt,
    "<=": num_le,
    "=": num_eq,
    "~=": num_ne,
    ">=": num_ge,
    ">": num_gt,
    "<<": lex_lt,
    "<<=": lex_le,
    "==": lex_eq,
    "~==": lex_ne,
    ">>=": lex_ge,
    ">>": lex_gt,
    "===": value_eq,
    "~===": value_ne,
    "||": concat,
    "|||": list_concat,
    "++": union,
    "--": difference,
    "**": intersection,
}

UNARY_OPS: dict[str, Callable[[Any], Any]] = {
    "-": negate,
    "+": numerate,
    "*": size,
    "~": complement,
    "?": random_of,
}


class IconOperation(IconIterator):
    """Map a value function over the cross product of operand generators.

    ``IconOperation(ops.plus, e1, e2)`` is the translation of ``e1 + e2``:
    for each result of e1, for each result of e2, apply the function to the
    dereferenced values; a :data:`FAIL` return means "no result here" and
    the search continues (this is how comparisons filter).
    """

    __slots__ = ("fn", "operands", "name")

    def __init__(self, fn: Callable[..., Any], *operands: Any, name: str = "") -> None:
        super().__init__()
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "operation")
        self.operands = tuple(as_iterator(op) for op in operands)

    def iterate(self) -> Iterator[Any]:
        # Unrolled unary/binary paths: operations dominate translated
        # arithmetic, and the recursive cross-product costs a generator
        # frame per operand per result.
        operands = self.operands
        fn = self.fn
        if len(operands) == 1:
            for a in operands[0].iterate():
                result = fn(deref(a))
                if result is not FAIL:
                    yield result
            return
        if len(operands) == 2:
            left, right = operands
            for a in left.iterate():
                a_value = deref(a)
                for b in right.iterate():
                    result = fn(a_value, deref(b))
                    if result is not FAIL:
                        yield result
            return
        yield from self._cross(0, [])

    def _cross(self, index: int, values: list) -> Iterator[Any]:
        if index == len(self.operands):
            result = self.fn(*values)
            if result is not FAIL:
                yield result
            return
        for result in self.operands[index].iterate():
            values.append(deref(result))
            yield from self._cross(index + 1, values)
            values.pop()


def operation(symbol: str, *operands: Any) -> IconOperation:
    """Build the :class:`IconOperation` for an operator symbol.

    Arity selects the registry: two operands use :data:`BINARY_OPS`, one
    uses :data:`UNARY_OPS`.
    """
    if len(operands) == 2:
        try:
            fn = BINARY_OPS[symbol]
        except KeyError:
            raise IconValueError(f"unknown binary operator {symbol!r}") from None
    elif len(operands) == 1:
        try:
            fn = UNARY_OPS[symbol]
        except KeyError:
            raise IconValueError(f"unknown unary operator {symbol!r}") from None
    else:
        raise IconValueError(f"operator {symbol!r} with {len(operands)} operands")
    return IconOperation(fn, *operands, name=symbol)


# ---------------------------------------------------------------------------
# Reference-sensitive operator nodes.
# ---------------------------------------------------------------------------


class IconToBy(IconIterator):
    """``e1 to e2 by e3`` — arithmetic progression generator.

    All three bounds are themselves generators; the progression is produced
    for every combination of their results (cross product), per Icon.
    """

    __slots__ = ("start", "stop", "step")

    def __init__(self, start: Any, stop: Any, step: Any | None = None) -> None:
        super().__init__()
        self.start = as_iterator(start)
        self.stop = as_iterator(stop)
        self.step = as_iterator(step) if step is not None else None

    def iterate(self) -> Iterator[Any]:
        for start_result in self.start.iterate():
            start = need_number(deref(start_result))
            for stop_result in self.stop.iterate():
                stop = need_number(deref(stop_result))
                if self.step is None:
                    yield from self._walk(start, stop, 1)
                else:
                    for step_result in self.step.iterate():
                        step = need_number(deref(step_result))
                        yield from self._walk(start, stop, step)

    @staticmethod
    def _walk(start: Any, stop: Any, step: Any) -> Iterator[Any]:
        if step == 0:
            raise IconValueError("to-by: by clause of 0")
        value = start
        if step > 0:
            while value <= stop:
                yield value
                value += step
        else:
            while value >= stop:
                yield value
                value += step


class IconAssign(IconIterator):
    """``x := e`` (and augmented ``x op:= e``) — assignment.

    The left operand must yield a variable; the result of the assignment is
    that variable (so assignments chain and can be further assigned).
    Augmented assignment applies *augment* to (old value, rhs value) and may
    fail (e.g. ``x <:= y`` assigns only when the comparison succeeds).
    """

    __slots__ = ("target", "expr", "augment")

    def __init__(
        self,
        target: Any,
        expr: Any,
        augment: Callable[[Any, Any], Any] | None = None,
    ) -> None:
        super().__init__()
        self.target = as_iterator(target)
        self.expr = as_iterator(expr)
        self.augment = augment

    def iterate(self) -> Iterator[Any]:
        for target in self.target.iterate():
            for result in self.expr.iterate():
                value = deref(result)
                if self.augment is not None:
                    value = self.augment(deref(target), value)
                    if value is FAIL:
                        continue
                if assign(target, value) is FAIL:
                    continue  # the reference vetoed (e.g. &pos range)
                yield target


class IconRevAssign(IconIterator):
    """``x <- e`` — reversible assignment.

    Assigns and suspends; if the surrounding expression backtracks into it,
    the old value is restored and the assignment fails (producing no more
    results).  The backbone of Icon's "try, and undo on failure" idiom.
    """

    __slots__ = ("target", "expr")

    def __init__(self, target: Any, expr: Any) -> None:
        super().__init__()
        self.target = as_iterator(target)
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for target in self.target.iterate():
            if not isinstance(target, Ref):
                raise IconTypeError("reversible assignment to a non-variable")
            for result in self.expr.iterate():
                saved = target.get()
                target.set(deref(result))
                yield target
                # Reached only on backtracking (generator resumed); if the
                # overall expression succeeded and stopped, the assignment
                # stands — so no try/finally, which would also run on close.
                target.set(saved)


class IconSwap(IconIterator):
    """``x :=: y`` — exchange two variables; result is the left variable."""

    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any) -> None:
        super().__init__()
        self.left = as_iterator(left)
        self.right = as_iterator(right)

    def iterate(self) -> Iterator[Any]:
        for left in self.left.iterate():
            for right in self.right.iterate():
                if not isinstance(left, Ref) or not isinstance(right, Ref):
                    raise IconTypeError("swap of a non-variable")
                left_value, right_value = left.get(), right.get()
                left.set(right_value)
                right.set(left_value)
                yield left


class IconRevSwap(IconIterator):
    """``x <-> y`` — reversible exchange (undone on backtracking)."""

    __slots__ = ("left", "right")

    def __init__(self, left: Any, right: Any) -> None:
        super().__init__()
        self.left = as_iterator(left)
        self.right = as_iterator(right)

    def iterate(self) -> Iterator[Any]:
        for left in self.left.iterate():
            for right in self.right.iterate():
                if not isinstance(left, Ref) or not isinstance(right, Ref):
                    raise IconTypeError("swap of a non-variable")
                left_value, right_value = left.get(), right.get()
                left.set(right_value)
                right.set(left_value)
                yield left
                # Backtracking only (see IconRevAssign).
                left.set(left_value)
                right.set(right_value)


class IconNullTest(IconIterator):
    """``/x`` — succeed with the variable iff its value is null."""

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            if deref(result) is None:
                yield result


class IconNonNullTest(IconIterator):
    """``\\x`` — succeed with the variable iff its value is not null."""

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            if deref(result) is not None:
                yield result


class IconDeref(IconIterator):
    """``.x`` — explicit dereference: results become plain values."""

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            yield deref(result)
