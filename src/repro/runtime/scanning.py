"""String scanning — ``s ? e``, ``&subject``/``&pos``, and the analysis
builtins (``tab``, ``move``, ``find``, ``upto``, ``many``, ``any``,
``match``, ``bal``) that make Icon "the forte of string processing" the
paper leans on for its word-count workloads.

Scanning state is a per-thread stack of (subject, pos) environments so
scans nest and co-expressions running in pipe threads each get their own
scanning context.  ``tab`` and ``move`` are *reversible*: implemented as
generator functions, they restore ``&pos`` when the surrounding expression
backtracks into them — delegation via
:class:`~repro.runtime.invoke.IconInvoke` makes that automatic.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from ..errors import IconValueError
from .access import resolve_position
from .failure import FAIL, Suspension
from .iterator import IconIterator, as_iterator, step_bounded
from .operations import need_integer, need_string
from .refs import deref
from .types import Cset, need_cset


class ScanEnv:
    """One scanning environment: the subject string and a 1-based position."""

    __slots__ = ("subject", "pos")

    def __init__(self, subject: str, pos: int = 1) -> None:
        self.subject = subject
        self.pos = pos

    def __repr__(self) -> str:
        return f"ScanEnv({self.subject!r}, pos={self.pos})"


class _ScanState(threading.local):
    def __init__(self) -> None:
        self.stack: list[ScanEnv] = []


_state = _ScanState()


def current_env(required: bool = True) -> ScanEnv:
    """The innermost scanning environment for this thread."""
    if not _state.stack:
        if required:
            raise IconValueError("no string scanning in progress (&subject)")
        return ScanEnv("", 1)
    return _state.stack[-1]


def push_env(env: ScanEnv) -> None:
    _state.stack.append(env)


def pop_env() -> ScanEnv:
    return _state.stack.pop()


def get_subject() -> str:
    return current_env().subject


def get_pos() -> int:
    return current_env().pos


def set_pos(pos: Any) -> Any:
    """Assign ``&pos`` — fails (returns FAIL) when out of range."""
    env = current_env()
    resolved = resolve_position(need_integer(pos), len(env.subject))
    if resolved is None:
        return FAIL
    env.pos = resolved + 1
    return env.pos


class IconScan(IconIterator):
    """``e1 ? e2`` — evaluate *e2* in a new scanning environment over *e1*.

    The subject expression is bounded; the scan's results are the body's
    results.  The environment nests: it is pushed for the duration of each
    body step and popped afterwards, so scans can suspend results outward
    and interleave with other scans on the same thread.
    """

    __slots__ = ("subject", "body")

    def __init__(self, subject: Any, body: Any) -> None:
        super().__init__()
        self.subject = as_iterator(subject)
        self.body = as_iterator(body)

    def iterate(self) -> Iterator[Any]:
        outcome = yield from step_bounded(self.subject)
        if outcome is FAIL:
            return
        env = ScanEnv(need_string(deref(outcome)), 1)
        iterator = self.body.iterate()
        while True:
            push_env(env)
            try:
                result = next(iterator)
                # Dereference inside the scanning window: a result that is
                # a keyword or position reference (&pos, &subject) must be
                # read while this scan's environment is still in force.
                if isinstance(result, Suspension):
                    result = Suspension(deref(result.value))
                else:
                    result = deref(result)
            except StopIteration:
                return
            finally:
                pop_env()
            yield result


def _span(subject: Any, i: Any, j: Any) -> tuple[str, int, int] | None:
    """Resolve (s, i, j) defaults and positions to a 0-based [lo, hi) span.

    With *subject* omitted (None), defaults are ``&subject`` and ``&pos``;
    otherwise i defaults to 1 and j to 0 (end of string).  Returns None
    (failure) when a position is out of range.
    """
    if subject is None:
        env = current_env()
        text = env.subject
        start_default = env.pos
    else:
        text = need_string(deref(subject))
        start_default = 1
    i = start_default if i is None else need_integer(deref(i))
    j = 0 if j is None else need_integer(deref(j))
    lo = resolve_position(i, len(text))
    hi = resolve_position(j, len(text))
    if lo is None or hi is None:
        return None
    if lo > hi:
        lo, hi = hi, lo
    return text, lo, hi


# ---------------------------------------------------------------------------
# Position-moving builtins (reversible generators).
# ---------------------------------------------------------------------------


def tab(i: Any) -> Iterator[str]:
    """``tab(i)`` — move ``&pos`` to *i*; produce the intervening substring.

    Reversible: backtracking into a suspended ``tab`` restores ``&pos``.
    """
    env = current_env()
    target = resolve_position(need_integer(deref(i)), len(env.subject))
    if target is None:
        return
    old = env.pos
    new_pos = target + 1
    lo, hi = sorted((old, new_pos))
    env.pos = new_pos
    yield env.subject[lo - 1: hi - 1]
    # Reached only when the surrounding expression *backtracks into* the
    # suspended tab (generator resumed); acceptance of the result abandons
    # the generator instead, leaving &pos moved.  No try/finally: a close
    # (GeneratorExit) must NOT restore.
    env.pos = old


def move(n: Any) -> Iterator[str]:
    """``move(n)`` — advance ``&pos`` by *n*; produce the moved-over text.

    Reversible, like ``tab``.  Fails when the move leaves the subject.
    """
    env = current_env()
    offset = need_integer(deref(n))
    new_pos = env.pos + offset
    if not 1 <= new_pos <= len(env.subject) + 1:
        return
    old = env.pos
    lo, hi = sorted((old, new_pos))
    env.pos = new_pos
    yield env.subject[lo - 1: hi - 1]
    env.pos = old  # resumption = backtracking; see tab()


def pos(i: Any) -> Iterator[int]:
    """``pos(i)`` — succeed with ``&pos`` iff it equals position *i*."""
    env = current_env()
    target = resolve_position(need_integer(deref(i)), len(env.subject))
    if target is not None and target + 1 == env.pos:
        yield env.pos


def tab_match(s: Any) -> Iterator[str]:
    """Unary ``=s`` in scanning — ``tab(match(s))``."""
    env = current_env()
    text = need_string(deref(s))
    start = env.pos - 1
    if env.subject.startswith(text, start):
        old = env.pos
        env.pos = old + len(text)
        yield text
        env.pos = old  # resumption = backtracking; see tab()


# ---------------------------------------------------------------------------
# String-analysis builtins (pure; usable inside or outside scanning).
# ---------------------------------------------------------------------------


def find(s1: Any, s2: Any = None, i: Any = None, j: Any = None) -> Iterator[int]:
    """``find(s1, s2, i, j)`` — generate positions where *s1* occurs."""
    needle = need_string(deref(s1))
    span = _span(s2, i, j)
    if span is None:
        return
    text, lo, hi = span
    position = lo
    limit = hi - len(needle)
    while position <= limit:
        hit = text.find(needle, position, hi)
        if hit < 0 or hit > limit:
            return
        yield hit + 1
        position = hit + 1


def upto(c: Any, s: Any = None, i: Any = None, j: Any = None) -> Iterator[int]:
    """``upto(c, s, i, j)`` — generate positions of characters in cset *c*."""
    charset = need_cset(deref(c))
    span = _span(s, i, j)
    if span is None:
        return
    text, lo, hi = span
    for index in range(lo, hi):
        if text[index] in charset:
            yield index + 1


def many(c: Any, s: Any = None, i: Any = None, j: Any = None) -> Iterator[int]:
    """``many(c, s, i, j)`` — position after the longest run of cset chars."""
    charset = need_cset(deref(c))
    span = _span(s, i, j)
    if span is None:
        return
    text, lo, hi = span
    index = lo
    while index < hi and text[index] in charset:
        index += 1
    if index > lo:
        yield index + 1


def any_(c: Any, s: Any = None, i: Any = None, j: Any = None) -> Iterator[int]:
    """``any(c, s, i, j)`` — position after one cset character."""
    charset = need_cset(deref(c))
    span = _span(s, i, j)
    if span is None:
        return
    text, lo, hi = span
    if lo < hi and text[lo] in charset:
        yield lo + 2


def match(s1: Any, s2: Any = None, i: Any = None, j: Any = None) -> Iterator[int]:
    """``match(s1, s2, i, j)`` — position after *s1* as an initial substring."""
    needle = need_string(deref(s1))
    span = _span(s2, i, j)
    if span is None:
        return
    text, lo, hi = span
    if lo + len(needle) <= hi and text.startswith(needle, lo):
        yield lo + len(needle) + 1


def bal(
    c1: Any = None,
    c2: Any = None,
    c3: Any = None,
    s: Any = None,
    i: Any = None,
    j: Any = None,
) -> Iterator[int]:
    """``bal(c1, c2, c3, s, i, j)`` — positions of balanced cset characters.

    Generates positions p where s[p] is in *c1* and s[i:p] is balanced with
    respect to opener cset *c2* (default ``(``) and closer *c3* (default
    ``)``).  Defaults: c1 = ``&cset`` (any character).
    """
    charset = need_cset(deref(c1)) if c1 is not None else None
    openers = need_cset(deref(c2)) if c2 is not None else Cset("(")
    closers = need_cset(deref(c3)) if c3 is not None else Cset(")")
    span = _span(s, i, j)
    if span is None:
        return
    text, lo, hi = span
    depth = 0
    for index in range(lo, hi):
        char = text[index]
        if depth == 0 and (charset is None or char in charset):
            yield index + 1
        if char in openers:
            depth += 1
        elif char in closers:
            depth -= 1
            if depth < 0:
                return
