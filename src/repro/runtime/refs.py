"""Reified variables — Icon's first-class reference semantics.

Icon expressions can yield *variables* (not just values) so that results can
be assigned: ``every !L := 0`` zeroes a list because ``!L`` generates element
variables.  Section V.A of the paper calls this *lifting*: "Lifting a
variable x turns it into a property with get and set methods, i.e. ``()->x``
and ``(r)->x=r``".  Section V.C exposes class fields in dual plain/reified
form (``Object x; IconVar x_r = new IconVar(()->x, (rhs)->x=rhs)``).

Here every reference kind is a :class:`Ref` with ``get``/``set``;
:func:`deref` collapses a reference to its value and is applied by every
operation before computing.
"""

from __future__ import annotations

from typing import Any, Callable, MutableMapping, MutableSequence

from ..errors import IconIndexError, IconNotAssignableError

_UNSET = object()


class Ref:
    """Abstract updatable reference (an Icon *variable*)."""

    __slots__ = ()

    def get(self) -> Any:
        raise NotImplementedError

    def set(self, value: Any) -> Any:
        raise NotImplementedError

    # Icon variables print as their value in most contexts.
    def __repr__(self) -> str:
        try:
            return f"{type(self).__name__}({self.get()!r})"
        except Exception:
            return f"{type(self).__name__}(<unset>)"


class IconVar(Ref):
    """A named variable cell.

    Used both directly (interpreter locals, reified class fields) and as the
    translation of ``local x`` in generated code.  Mirrors the paper's
    ``IconVar`` including the closure-backed form: pass ``getter``/``setter``
    to alias external storage (a plain Python attribute, a host variable),
    or neither for a self-contained cell.
    """

    __slots__ = ("name", "_value", "_getter", "_setter", "_is_local")

    def __init__(
        self,
        name: str = "",
        getter: Callable[[], Any] | None = None,
        setter: Callable[[Any], Any] | None = None,
    ) -> None:
        self.name = name
        self._value: Any = None
        self._getter = getter
        self._setter = setter
        self._is_local = False

    def local(self) -> "IconVar":
        """Mark as method-local (fluent, as in the paper's ``.local()``)."""
        self._is_local = True
        return self

    @property
    def is_local(self) -> bool:
        return self._is_local

    def get(self) -> Any:
        if self._getter is not None:
            return self._getter()
        return self._value

    def set(self, value: Any) -> Any:
        if self._setter is not None:
            self._setter(value)
        else:
            self._value = value
        return value


class IconTmp(Ref):
    """A compiler temporary produced by normalization (paper: ``IconTmp``).

    Temporaries hold intermediate bound-iteration results while flattening
    primaries; they are plain slots with no aliasing.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Any = None) -> None:
        self._value = value

    def get(self) -> Any:
        return self._value

    def set(self, value: Any) -> Any:
        self._value = value
        return value


class ListRef(Ref):
    """Reference to ``lst[index]`` (already-normalized, 0-based index)."""

    __slots__ = ("sequence", "index")

    def __init__(self, sequence: MutableSequence, index: int) -> None:
        self.sequence = sequence
        self.index = index

    def get(self) -> Any:
        try:
            return self.sequence[self.index]
        except IndexError as exc:
            raise IconIndexError(f"subscript {self.index} out of range") from exc

    def set(self, value: Any) -> Any:
        try:
            self.sequence[self.index] = value
        except IndexError as exc:
            raise IconIndexError(f"subscript {self.index} out of range") from exc
        return value


class TableRef(Ref):
    """Reference to ``table[key]``.

    Icon tables yield a variable for any key; reading a missing key gives
    the table's default (here: None), and assigning creates the entry.
    """

    __slots__ = ("table", "key", "default")

    def __init__(self, table: MutableMapping, key: Any, default: Any = None) -> None:
        self.table = table
        self.key = key
        self.default = default

    def get(self) -> Any:
        return self.table.get(self.key, self.default)

    def set(self, value: Any) -> Any:
        self.table[self.key] = value
        return value


class FieldRef(Ref):
    """Reference to ``obj.name`` — the plain half of the plain/reified dual.

    When the owning object also carries a reified field ``name_r`` (as
    emitted by the class transformation, Section V.C) the two stay
    consistent automatically because the reified var aliases the plain
    attribute through closures; ``FieldRef`` reads/writes the plain side.
    """

    __slots__ = ("obj", "name")

    def __init__(self, obj: Any, name: str) -> None:
        self.obj = obj
        self.name = name

    def get(self) -> Any:
        return getattr(self.obj, self.name)

    def set(self, value: Any) -> Any:
        setattr(self.obj, self.name, value)
        return value


class ReadOnlyRef(Ref):
    """A value masquerading as a reference; assignment is an error.

    Icon calls such results *dereferenced* values — e.g. ``!s`` on a string
    generates one-character substrings that cannot be assigned.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Any) -> None:
        self._value = value

    def get(self) -> Any:
        return self._value

    def set(self, value: Any) -> Any:
        raise IconNotAssignableError("assignment to a non-variable")


def deref(value: Any) -> Any:
    """Collapse a reference to its value; pass plain values through."""
    if isinstance(value, Ref):
        return value.get()
    return value


def assign(target: Any, value: Any) -> Any:
    """Assign *value* through *target*, which must be a :class:`Ref`."""
    if not isinstance(target, Ref):
        raise IconNotAssignableError(
            f"assignment target is a {type(target).__name__}, not a variable"
        )
    return target.set(value)
