"""Promotion — the ``!`` operator (paper Sections III, V.A).

``!e`` "lifts lists as well as co-expressions to iterators": it generates
the elements of a collection, the characters of a string, the lines of a
file, or the remaining results of a first-class generator / co-expression /
pipe.  Elements of mutable collections are produced as *variables*
(:class:`~repro.runtime.refs.ListRef` / ``TableRef``) so they can be
assigned, matching Icon's reference semantics.

Objects can opt into promotion by exposing an ``icon_promote()`` method
returning an iterator of results — co-expressions and pipes use this hook
so that ``!c`` keeps stepping them until failure without this module
depending on the concurrency layer.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import IconTypeError
from .failure import FAIL
from .iterator import IconIterator, as_iterator
from .refs import ListRef, Ref, TableRef, deref
from .operations import need_string
from .types import Cset


def promote_value(value: Any) -> Iterator[Any]:
    """Return an iterator of results for ``!value`` (already dereferenced)."""
    hook = getattr(value, "icon_promote", None)
    if hook is not None:
        return hook()
    if isinstance(value, IconIterator):
        return value.iterate()
    if isinstance(value, list):
        return _promote_list(value)
    if isinstance(value, str):
        return iter(value)
    if isinstance(value, dict):
        return _promote_table(value)
    if isinstance(value, (set, frozenset)):
        return iter(list(value))
    if isinstance(value, Cset):
        return iter(value)
    if isinstance(value, tuple):
        return iter(value)
    if isinstance(value, (int, float)):
        return iter(need_string(value))
    if hasattr(value, "readline"):
        return _promote_file(value)
    if hasattr(value, "__next__"):
        return value  # an in-flight Python iterator: delegate, single-shot
    if hasattr(value, "__iter__"):
        return iter(value)
    raise IconTypeError(f"cannot promote {type(value).__name__} to a generator")


def _promote_list(values: list) -> Iterator[Any]:
    # Index-based walk so concurrent growth/shrink during generation behaves
    # like Icon's element generation (bounded by the live length).
    index = 0
    while index < len(values):
        yield ListRef(values, index)
        index += 1


def _promote_table(table: dict) -> Iterator[Any]:
    for key in list(table):
        yield TableRef(table, key)


def _promote_file(handle: Any) -> Iterator[str]:
    while True:
        line = handle.readline()
        if line == "" or line is None:
            return
        yield line.rstrip("\n")


class IconPromote(IconIterator):
    """The ``!e`` node: promote each result of *e* in turn.

    For each result of the operand (usually exactly one — a collection or a
    first-class generator), generate that value's elements/results.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            yield from promote_value(deref(result))


class IconActivate(IconIterator):
    """The ``@c`` node: step a first-class generator one iteration.

    Succeeds with the next result or fails when the stepped entity is
    exhausted.  Optionally transmits a value into the co-expression
    (``v @ c``).  Anything exposing ``icon_activate(value)`` (co-expressions,
    pipes) is stepped through that hook; a bare :class:`IconIterator` is
    stepped with its stateful ``next_value``.
    """

    __slots__ = ("target", "transmit")

    def __init__(self, target: Any, transmit: Any | None = None) -> None:
        super().__init__()
        self.target = as_iterator(target)
        self.transmit = as_iterator(transmit) if transmit is not None else None

    def iterate(self) -> Iterator[Any]:
        for target_result in self.target.iterate():
            target = deref(target_result)
            sent = None
            if self.transmit is not None:
                sent = self.transmit.first()
                if sent is FAIL:
                    return
            result = activate_value(target, sent)
            if result is not FAIL:
                yield result


def activate_value(target: Any, transmit: Any = None) -> Any:
    """Step *target* one iteration; return the result or :data:`FAIL`."""
    hook = getattr(target, "icon_activate", None)
    if hook is not None:
        return hook(transmit)
    if isinstance(target, IconIterator):
        return target.next_value()
    if hasattr(target, "__next__"):
        try:
            return next(target)
        except StopIteration:
            return FAIL
    raise IconTypeError(f"cannot activate {type(target).__name__}")
