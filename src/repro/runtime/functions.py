"""Icon's built-in function library (paper Section VI: "as well as most of
Icon's built-in functions").

Generator-valued builtins are Python generator functions, so invocation
through :class:`~repro.runtime.invoke.IconInvoke` delegates to them
naturally; single-valued builtins return their value or :data:`FAIL`.
:data:`BUILTINS` maps Icon names to callables — the interpreter seeds its
global scope from it, and generated code imports it.
"""

from __future__ import annotations

import math
import time as _time
from typing import Any, Iterator

from ..errors import IconTypeError, IconValueError
from .failure import FAIL
from .operations import (
    current_random_seed,
    need_integer,
    need_number,
    need_string,
    seed_random,
)
from .refs import deref
from .types import (
    ASCII,
    CSET_ALL,
    Cset,
    DIGITS,
    LCASE,
    LETTERS,
    UCASE,
    need_cset,
)
from . import scanning


# ---------------------------------------------------------------------------
# Type conversion and inspection.
# ---------------------------------------------------------------------------


def icon_integer(x: Any) -> Any:
    """``integer(x)`` — convert to integer, failing (not erroring) if not."""
    x = deref(x)
    try:
        return need_integer(x)
    except IconTypeError:
        return FAIL


def icon_numeric(x: Any) -> Any:
    """``numeric(x)`` — convert to a number or fail."""
    x = deref(x)
    try:
        return need_number(x)
    except IconTypeError:
        return FAIL


def icon_real(x: Any) -> Any:
    """``real(x)`` — convert to a float or fail."""
    x = deref(x)
    try:
        return float(need_number(x))
    except IconTypeError:
        return FAIL


def icon_string(x: Any) -> Any:
    """``string(x)`` — convert to a string or fail."""
    x = deref(x)
    try:
        return need_string(x)
    except IconTypeError:
        return FAIL


def icon_cset(x: Any) -> Any:
    """``cset(x)`` — convert to a cset or fail."""
    x = deref(x)
    try:
        return need_cset(x)
    except IconTypeError:
        return FAIL


def icon_type(x: Any) -> str:
    """``type(x)`` — Icon's name for the value's type."""
    x = deref(x)
    if x is None:
        return "null"
    if isinstance(x, bool):
        return "boolean"  # host extension: Icon has no booleans
    if isinstance(x, int):
        return "integer"
    if isinstance(x, float):
        return "real"
    if isinstance(x, str):
        return "string"
    if isinstance(x, Cset):
        return "cset"
    if isinstance(x, list):
        return "list"
    if isinstance(x, dict):
        return "table"
    if isinstance(x, (set, frozenset)):
        return "set"
    if callable(x):
        return "procedure"
    kind = getattr(x, "icon_type", None)
    if kind is not None:
        return kind() if callable(kind) else str(kind)
    return type(x).__name__


def icon_image(x: Any) -> str:
    """``image(x)`` — a printable diagnostic image of the value."""
    x = deref(x)
    if x is None:
        return "&null"
    if isinstance(x, str):
        return '"' + x.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(x, Cset):
        return "'" + x.string() + "'"
    if isinstance(x, bool):
        return "&yes" if x else "&no"
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float):
        return repr(x)
    if isinstance(x, list):
        return f"list_{id(x) % 1000}({len(x)})"
    if isinstance(x, dict):
        return f"table_{id(x) % 1000}({len(x)})"
    if isinstance(x, (set, frozenset)):
        return f"set_{id(x) % 1000}({len(x)})"
    if callable(x):
        name = getattr(x, "__name__", "anonymous")
        return f"procedure {name}"
    return repr(x)


def icon_copy(x: Any) -> Any:
    """``copy(x)`` — one-level copy of a structure; values pass through."""
    x = deref(x)
    if isinstance(x, list):
        return list(x)
    if isinstance(x, dict):
        return dict(x)
    if isinstance(x, set):
        return set(x)
    refresh = getattr(x, "refresh", None)
    if refresh is not None and not isinstance(x, (str, int, float)):
        return refresh()
    return x


def icon_abs(x: Any) -> Any:
    return abs(need_number(deref(x)))


def icon_min(*xs: Any) -> Any:
    if not xs:
        return FAIL
    return min(need_number(deref(x)) for x in xs)


def icon_max(*xs: Any) -> Any:
    if not xs:
        return FAIL
    return max(need_number(deref(x)) for x in xs)


def icon_char(i: Any) -> str:
    """``char(i)`` — the character with code *i*."""
    code = need_integer(deref(i))
    if not 0 <= code < 0x110000:
        raise IconValueError(f"char({code}) out of range")
    return chr(code)


def icon_ord(s: Any) -> int:
    """``ord(s)`` — the code of a one-character string."""
    text = need_string(deref(s))
    if len(text) != 1:
        raise IconValueError("ord() needs a one-character string")
    return ord(text)


# ---------------------------------------------------------------------------
# Generator-valued builtins.
# ---------------------------------------------------------------------------


def seq(i: Any = 1, j: Any = 1) -> Iterator[int]:
    """``seq(i, j)`` — the unbounded sequence i, i+j, i+2j, ..."""
    value = need_integer(deref(i))
    step = need_integer(deref(j))
    if step == 0:
        raise IconValueError("seq() by clause of 0")
    while True:
        yield value
        value += step


def key(table: Any) -> Iterator[Any]:
    """``key(T)`` — generate the keys of a table."""
    table = deref(table)
    if not isinstance(table, dict):
        raise IconTypeError("key() expects a table")
    yield from list(table)


# ---------------------------------------------------------------------------
# String construction.
# ---------------------------------------------------------------------------


def _pad(s: Any, n: Any, pad: Any) -> tuple[str, int, str]:
    text = need_string(deref(s))
    width = need_integer(deref(n))
    if width < 0:
        raise IconValueError("negative field width")
    padding = need_string(deref(pad)) if pad is not None else " "
    if not padding:
        padding = " "
    return text, width, padding


def left(s: Any, n: Any, pad: Any = None) -> str:
    """``left(s, n, p)`` — left-justify *s* in a field of width *n*."""
    text, width, padding = _pad(s, n, pad)
    if len(text) >= width:
        return text[:width]
    fill = (padding * width)[: width - len(text)]
    return text + fill


def right(s: Any, n: Any, pad: Any = None) -> str:
    """``right(s, n, p)`` — right-justify *s* in a field of width *n*."""
    text, width, padding = _pad(s, n, pad)
    if len(text) >= width:
        return text[len(text) - width:]
    fill = (padding * width)[: width - len(text)]
    return fill + text


def center(s: Any, n: Any, pad: Any = None) -> str:
    """``center(s, n, p)`` — center *s* in a field of width *n*."""
    text, width, padding = _pad(s, n, pad)
    if len(text) >= width:
        start = (len(text) - width) // 2
        return text[start: start + width]
    total = width - len(text)
    left_fill = (padding * width)[: total // 2]
    right_fill = (padding * width)[: total - total // 2]
    return left_fill + text + right_fill


def repl(s: Any, n: Any) -> str:
    """``repl(s, n)`` — *n* copies of *s*."""
    count = need_integer(deref(n))
    if count < 0:
        raise IconValueError("repl() with negative count")
    return need_string(deref(s)) * count


def reverse(s: Any) -> Any:
    """``reverse(x)`` — reversed string (or list, per Unicon)."""
    x = deref(s)
    if isinstance(x, list):
        return x[::-1]
    return need_string(x)[::-1]


def trim(s: Any, c: Any = None) -> str:
    """``trim(s, c)`` — remove trailing cset characters (default blanks)."""
    text = need_string(deref(s))
    charset = need_cset(deref(c)) if c is not None else Cset(" ")
    end = len(text)
    while end > 0 and text[end - 1] in charset:
        end -= 1
    return text[:end]


def icon_map(s: Any, from_: Any = None, to: Any = None) -> str:
    """``map(s, c1, c2)`` — transliterate characters of *s*."""
    text = need_string(deref(s))
    source = need_string(deref(from_)) if from_ is not None else UCASE.string()
    target = need_string(deref(to)) if to is not None else LCASE.string()
    if len(source) != len(target):
        raise IconValueError("map(): unequal translation strings")
    table = {ord(a): b for a, b in zip(source, target)}
    return text.translate(table)


# ---------------------------------------------------------------------------
# Structure functions.
# ---------------------------------------------------------------------------


def icon_list(n: Any = 0, x: Any = None) -> list:
    """``list(n, x)`` — a list of *n* copies of *x*."""
    return [deref(x)] * need_integer(deref(n))


def icon_table(default: Any = None) -> dict:
    """``table(x)`` — a new table (the default value is recorded).

    Python dicts carry no default, so tables with a non-null default are
    represented by a dict subclass remembering it; subscripting honours it.
    """
    default = deref(default)
    if default is None:
        return {}
    table = _DefaultTable()
    table.icon_default = default
    return table


class _DefaultTable(dict):
    icon_default: Any = None

    def get(self, key: Any, default: Any = None) -> Any:  # type: ignore[override]
        if key in self:
            return dict.get(self, key)
        return self.icon_default if default is None else default


def icon_set(members: Any = None) -> set:
    """``set(L)`` — a new set, optionally from a list."""
    members = deref(members)
    if members is None:
        return set()
    if isinstance(members, (list, tuple, set, frozenset)):
        return set(members)
    raise IconTypeError("set() expects a list")


def put(lst: Any, *values: Any) -> Any:
    """``put(L, x, ...)`` — append to the right end; returns the list."""
    lst = deref(lst)
    if not isinstance(lst, list):
        raise IconTypeError("put() expects a list")
    for value in values:
        lst.append(deref(value))
    return lst


def push(lst: Any, *values: Any) -> Any:
    """``push(L, x, ...)`` — prepend to the left end; returns the list."""
    lst = deref(lst)
    if not isinstance(lst, list):
        raise IconTypeError("push() expects a list")
    for value in values:
        lst.insert(0, deref(value))
    return lst


def get(lst: Any) -> Any:
    """``get(L)`` / ``pop(L)`` — remove from the left end; fails if empty."""
    lst = deref(lst)
    if not isinstance(lst, list):
        raise IconTypeError("get() expects a list")
    if not lst:
        return FAIL
    return lst.pop(0)


def pull(lst: Any) -> Any:
    """``pull(L)`` — remove from the right end; fails if empty."""
    lst = deref(lst)
    if not isinstance(lst, list):
        raise IconTypeError("pull() expects a list")
    if not lst:
        return FAIL
    return lst.pop()


def insert(target: Any, key: Any, value: Any = None) -> Any:
    """``insert(X, k, v)`` — add to a table or set; returns X."""
    target = deref(target)
    key = deref(key)
    if isinstance(target, dict):
        target[key] = deref(value)
        return target
    if isinstance(target, set):
        target.add(key)
        return target
    raise IconTypeError("insert() expects a table or set")


def delete(target: Any, key: Any) -> Any:
    """``delete(X, k)`` — remove from a table or set; returns X."""
    target = deref(target)
    key = deref(key)
    if isinstance(target, dict):
        target.pop(key, None)
        return target
    if isinstance(target, set):
        target.discard(key)
        return target
    raise IconTypeError("delete() expects a table or set")


def member(target: Any, key: Any) -> Any:
    """``member(X, k)`` — succeed with *k* iff it is a member/key of X."""
    target = deref(target)
    key = deref(key)
    if isinstance(target, (dict, set, frozenset)):
        return key if key in target else FAIL
    if isinstance(target, Cset):
        return key if key in target else FAIL
    raise IconTypeError("member() expects a table, set, or cset")


def icon_sort(x: Any) -> list:
    """``sort(X)`` — a sorted list of elements (or [key, value] pairs)."""
    x = deref(x)
    if isinstance(x, dict):
        return [[k, x[k]] for k in sorted(x, key=_sort_key)]
    if isinstance(x, (list, set, frozenset)):
        return sorted(x, key=_sort_key)
    if isinstance(x, Cset):
        return sorted(x.chars)
    raise IconTypeError(f"sort() of {type(x).__name__} is undefined")


def _sort_key(value: Any) -> tuple:
    # Icon sorts across types by a fixed type order; numbers before strings.
    if isinstance(value, bool):
        return (0, value)
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(type(value)), id(value))


# ---------------------------------------------------------------------------
# Math builtins (Icon provides the usual transcendental set).
# ---------------------------------------------------------------------------


def _math1(fn):
    def wrapped(x: Any) -> float:
        return fn(need_number(deref(x)))

    wrapped.__name__ = fn.__name__
    return wrapped


icon_sqrt = _math1(math.sqrt)
icon_exp = _math1(math.exp)
icon_sin = _math1(math.sin)
icon_cos = _math1(math.cos)
icon_tan = _math1(math.tan)
icon_asin = _math1(math.asin)
icon_acos = _math1(math.acos)


def icon_log(x: Any, base: Any = None) -> float:
    value = need_number(deref(x))
    if base is None:
        return math.log(value)
    return math.log(value, need_number(deref(base)))


def icon_atan(y: Any, x: Any = None) -> float:
    if x is None:
        return math.atan(need_number(deref(y)))
    return math.atan2(need_number(deref(y)), need_number(deref(x)))


# ---------------------------------------------------------------------------
# Bit-manipulation builtins (Icon's iand/ior/ixor/icom/ishift).
# ---------------------------------------------------------------------------


def iand(a: Any, b: Any) -> int:
    """``iand(i, j)`` — bitwise and."""
    return need_integer(deref(a)) & need_integer(deref(b))


def ior(a: Any, b: Any) -> int:
    """``ior(i, j)`` — bitwise or."""
    return need_integer(deref(a)) | need_integer(deref(b))


def ixor(a: Any, b: Any) -> int:
    """``ixor(i, j)`` — bitwise exclusive or."""
    return need_integer(deref(a)) ^ need_integer(deref(b))


def icom(a: Any) -> int:
    """``icom(i)`` — bitwise complement."""
    return ~need_integer(deref(a))


def ishift(a: Any, b: Any) -> int:
    """``ishift(i, j)`` — shift left for positive *j*, right for negative."""
    value = need_integer(deref(a))
    amount = need_integer(deref(b))
    if amount >= 0:
        return value << amount
    return value >> (-amount)


# ---------------------------------------------------------------------------
# Tab-expansion builtins (Icon's entab/detab).
# ---------------------------------------------------------------------------


def detab(s: Any, *stops: Any) -> str:
    """``detab(s, i, ...)`` — replace tabs with spaces at the tab stops.

    Default stops every 8 columns, per Icon.
    """
    text = need_string(deref(s))
    interval = need_integer(deref(stops[0])) - 1 if stops else 8
    if interval < 1:
        raise IconValueError("detab(): tab stop interval must be >= 2")
    out: list[str] = []
    column = 0
    for char in text:
        if char == "\t":
            pad = interval - (column % interval)
            out.append(" " * pad)
            column += pad
        elif char == "\n":
            out.append(char)
            column = 0
        else:
            out.append(char)
            column += 1
    return "".join(out)


def entab(s: Any, *stops: Any) -> str:
    """``entab(s, i, ...)`` — replace runs of spaces with tabs."""
    text = need_string(deref(s))
    interval = need_integer(deref(stops[0])) - 1 if stops else 8
    if interval < 1:
        raise IconValueError("entab(): tab stop interval must be >= 2")
    out: list[str] = []
    for line in text.split("\n"):
        rebuilt: list[str] = []
        column = 0
        pending_spaces = 0
        for char in line:
            if char == " ":
                pending_spaces += 1
                if (column + pending_spaces) % interval == 0:
                    rebuilt.append("\t" if pending_spaces > 1 else " ")
                    column += pending_spaces
                    pending_spaces = 0
            else:
                rebuilt.append(" " * pending_spaces)
                column += pending_spaces
                pending_spaces = 0
                rebuilt.append(char)
                column += 1
        rebuilt.append(" " * pending_spaces)
        out.append("".join(rebuilt))
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Environment / process builtins.
# ---------------------------------------------------------------------------


def getenv(name: Any) -> Any:
    """``getenv(s)`` — environment variable value; fails when unset."""
    import os

    value = os.environ.get(need_string(deref(name)))
    return FAIL if value is None else value


_SERIAL_COUNTER = 0


def serial(x: Any = None) -> Any:
    """``serial(x)`` — a structure's serial number (host: a stable id);
    with no argument, a fresh monotonically increasing number."""
    global _SERIAL_COUNTER
    x = deref(x)
    if x is None:
        _SERIAL_COUNTER += 1
        return _SERIAL_COUNTER
    if isinstance(x, (list, dict, set)):
        return id(x)
    return FAIL


def proc(name: Any, arity: Any = None) -> Any:
    """``proc(s)`` — the procedure named *s*, or fail.

    Looks through the Icon builtins; generated code's ``GlobalRef``
    handles module-level procedures, and :func:`proc_in` resolves against
    an explicit namespace (used by string invocation).
    """
    del arity  # Icon's operator-arity selection is not applicable
    name = deref(name)
    if callable(name):
        return name
    if not isinstance(name, str):
        return FAIL
    return BUILTINS.get(name, FAIL)


def proc_in(namespace: Any, name: str) -> Any:
    """Resolve a procedure name against a namespace, then the builtins."""
    if isinstance(namespace, dict) and name in namespace and callable(namespace[name]):
        return namespace[name]
    value = BUILTINS.get(name)
    return value if callable(value) else FAIL


# ---------------------------------------------------------------------------
# I/O builtins.
# ---------------------------------------------------------------------------


def write(*args: Any) -> Any:
    """``write(x, ...)`` — print string images with a newline; returns the
    last argument (or the null value when called with none)."""
    rendered = [need_string(deref(a)) if deref(a) is not None else "" for a in args]
    print("".join(rendered))
    return deref(args[-1]) if args else None


def writes(*args: Any) -> Any:
    """``writes(x, ...)`` — like ``write`` without the trailing newline."""
    rendered = [need_string(deref(a)) if deref(a) is not None else "" for a in args]
    print("".join(rendered), end="")
    return deref(args[-1]) if args else None


def read(handle: Any = None) -> Any:
    """``read(f)`` — next line of a file (default stdin); fails at EOF."""
    import sys

    stream = deref(handle) if handle is not None else sys.stdin
    line = stream.readline()
    if line == "":
        return FAIL
    return line.rstrip("\n")


def stop(*args: Any) -> Any:
    """``stop(x, ...)`` — write to stderr and terminate."""
    import sys

    rendered = [need_string(deref(a)) if deref(a) is not None else "" for a in args]
    print("".join(rendered), file=sys.stderr)
    raise SystemExit(1)


# ---------------------------------------------------------------------------
# Keywords (&subject, &pos, &digits, ...).
# ---------------------------------------------------------------------------


_START_TIME = _time.monotonic()


def keyword(name: str) -> Any:
    """Read an Icon keyword value; raises for unknown keywords."""
    if name == "subject":
        return scanning.get_subject()
    if name == "pos":
        return scanning.get_pos()
    if name == "null":
        return None
    if name == "digits":
        return DIGITS
    if name == "letters":
        return LETTERS
    if name == "lcase":
        return LCASE
    if name == "ucase":
        return UCASE
    if name == "cset":
        return CSET_ALL
    if name == "ascii":
        return ASCII
    if name == "time":
        return int((_time.monotonic() - _START_TIME) * 1000)
    if name == "clock":
        return _time.strftime("%H:%M:%S")
    if name == "date":
        return _time.strftime("%Y/%m/%d")
    if name == "random":
        return current_random_seed()
    if name == "version":
        return "repro concurrent-generators (Junicon-in-Python)"
    if name == "fail":
        return FAIL
    raise IconValueError(f"unknown keyword &{name}")


def set_keyword(name: str, value: Any) -> Any:
    """Assign to an assignable keyword (&pos, &subject, &random)."""
    if name == "pos":
        return scanning.set_pos(value)
    if name == "subject":
        env = scanning.current_env()
        env.subject = need_string(deref(value))
        env.pos = 1
        return env.subject
    if name == "random":
        seed_random(need_integer(deref(value)))
        return value
    raise IconValueError(f"keyword &{name} is not assignable")


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------

BUILTINS: dict[str, Any] = {
    # conversion / inspection
    "abs": icon_abs,
    "char": icon_char,
    "copy": icon_copy,
    "cset": icon_cset,
    "image": icon_image,
    "integer": icon_integer,
    "max": icon_max,
    "min": icon_min,
    "numeric": icon_numeric,
    "ord": icon_ord,
    "real": icon_real,
    "string": icon_string,
    "type": icon_type,
    # generators
    "seq": seq,
    "key": key,
    "find": scanning.find,
    "upto": scanning.upto,
    "bal": scanning.bal,
    # single-valued analysis
    "any": scanning.any_,
    "many": scanning.many,
    "match": scanning.match,
    # scanning movement
    "move": scanning.move,
    "pos": scanning.pos,
    "tab": scanning.tab,
    # string construction
    "center": center,
    "left": left,
    "map": icon_map,
    "repl": repl,
    "reverse": reverse,
    "right": right,
    "trim": trim,
    # structures
    "delete": delete,
    "get": get,
    "insert": insert,
    "list": icon_list,
    "member": member,
    "pop": get,
    "pull": pull,
    "push": push,
    "put": put,
    "set": icon_set,
    "sort": icon_sort,
    "table": icon_table,
    # bits
    "iand": iand,
    "icom": icom,
    "ior": ior,
    "ishift": ishift,
    "ixor": ixor,
    # tabs
    "detab": detab,
    "entab": entab,
    # environment
    "getenv": getenv,
    "proc": proc,
    "serial": serial,
    # I/O
    "read": read,
    "stop": stop,
    "write": write,
    "writes": writes,
    # math
    "acos": icon_acos,
    "asin": icon_asin,
    "atan": icon_atan,
    "cos": icon_cos,
    "exp": icon_exp,
    "log": icon_log,
    "sin": icon_sin,
    "sqrt": icon_sqrt,
    "tan": icon_tan,
}
