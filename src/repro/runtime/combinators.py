"""Composition forms over the iterator kernel (paper Sections II.A, V.B).

These are the "stream-like interface for composing suspendable iterators
using functional forms such as product, concatenation, map, and reduce".
Each node holds child expression nodes and re-iterates them per pass, which
is exactly what gives goal-directed evaluation its backtracking: a product
re-evaluates its right operand for every result of its left operand.
"""

from __future__ import annotations

from typing import Any, Iterator

from .failure import FAIL, BreakSignal, NextSignal, Suspension
from .iterator import IconIterator, as_iterator, step_bounded
from .refs import Ref, deref


class IconProduct(IconIterator):
    """``e & e'`` — the iterator (cross) product, Icon's conjunction.

    For each result of the left operand, iterate the right operand fully
    and yield *its* results.  Embodies both cross-product and conditional
    evaluation: if the left operand fails at some point, the right operand
    is not evaluated there.  N-ary for convenience; ``IconProduct(a, b, c)``
    is ``a & (b & c)``.
    """

    __slots__ = ("operands",)

    def __init__(self, *operands: Any) -> None:
        super().__init__()
        if not operands:
            raise ValueError("IconProduct requires at least one operand")
        self.operands = tuple(as_iterator(op) for op in operands)

    def iterate(self) -> Iterator[Any]:
        # The binary case is the translation of every `&` and of every
        # normalized bound-iterator chain link; avoid the recursion frame.
        if len(self.operands) == 2:
            left, right = self.operands
            for _ in left.iterate():
                yield from right.iterate()
            return
        yield from self._iterate_from(0)

    def _iterate_from(self, index: int) -> Iterator[Any]:
        node = self.operands[index]
        if index == len(self.operands) - 1:
            yield from node.iterate()
            return
        for _ in node.iterate():
            yield from self._iterate_from(index + 1)


class IconIn(IconIterator):
    """Bound iteration ``(x in e)`` introduced by normalization (V.A).

    Assigns each (dereferenced) result of *expr* to *ref* and yields the
    ref, so downstream pieces of a flattened primary can read the binding
    while assignment through the result still reaches the variable.
    """

    __slots__ = ("ref", "expr")

    def __init__(self, ref: Ref, expr: Any) -> None:
        super().__init__()
        self.ref = ref
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            self.ref.set(deref(result))
            yield self.ref


class IconConcat(IconIterator):
    """Alternation ``e | e'`` — concatenation of result sequences.

    N-ary: yields every result of each operand in order.  (Named after the
    paper's phrase "| means concatenation of generators"; this is Icon's
    alternation operator, not string concatenation.)
    """

    __slots__ = ("operands",)

    def __init__(self, *operands: Any) -> None:
        super().__init__()
        self.operands = tuple(as_iterator(op) for op in operands)

    def iterate(self) -> Iterator[Any]:
        for node in self.operands:
            yield from node.iterate()


class IconSequence(IconIterator):
    """``e1; e2; ...; en`` — sequence of bounded expressions.

    Icon evaluates each statement but the last as a *bounded expression*
    (at most one result, success or failure immaterial) and delegates
    remaining iteration to the final term, whose results become the
    sequence's results.
    """

    __slots__ = ("body", "final")

    def __init__(self, *exprs: Any) -> None:
        super().__init__()
        nodes = tuple(as_iterator(e) for e in exprs)
        if not nodes:
            nodes = (IconConcat(),)  # empty sequence: fails
        self.body = nodes[:-1]
        self.final = nodes[-1]

    def iterate(self) -> Iterator[Any]:
        for node in self.body:
            # Bounded evaluation; the outcome is discarded but suspension
            # envelopes are forwarded toward the procedure root.
            yield from step_bounded(node)
        yield from self.final.iterate()


class IconBound(IconIterator):
    """A bounded expression — at most one result (``{e}`` in statement
    position, loop bodies, conditions)."""

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            yield result
            if not isinstance(result, Suspension):
                return


class IconLimit(IconIterator):
    """Limitation ``e \\ n`` — at most *n* results of *e*.

    Icon's full semantics resume the limit expression for further quotas;
    like most implementations we take the first value of *limit* as the
    quota for one pass of *expr*.  A failing or non-positive quota yields
    nothing.
    """

    __slots__ = ("expr", "limit")

    def __init__(self, expr: Any, limit: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)
        self.limit = as_iterator(limit)

    def iterate(self) -> Iterator[Any]:
        quota = self.limit.first()
        if quota is FAIL:
            return
        quota = int(deref(quota))
        if quota <= 0:
            return
        produced = 0
        for result in self.expr.iterate():
            yield result
            produced += 1
            if produced >= quota:
                return


class IconRepeatAlt(IconIterator):
    """Repeated alternation ``|e`` — e's results over and over.

    Terminates (fails) when a pass of *e* produces no result at all,
    otherwise restarts *e* after each exhausted pass.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        while True:
            produced = False
            for result in self.expr.iterate():
                produced = True
                yield result
            if not produced:
                return


class IconNot(IconIterator):
    """``not e`` — succeeds (with the null value) iff *e* fails."""

    __slots__ = ("expr",)

    def __init__(self, expr: Any) -> None:
        super().__init__()
        self.expr = as_iterator(expr)

    def iterate(self) -> Iterator[Any]:
        if not self.expr.exists():
            yield None


class IconEvery(IconIterator):
    """``every e1 do e2`` — drive *e1* to exhaustion for side effects.

    For each result of the generator expression, the do-clause (if any) is
    evaluated as a bounded expression.  ``every`` itself always fails.
    ``break``/``next`` signals from the body are honoured.
    """

    __slots__ = ("gen", "body")

    def __init__(self, gen: Any, body: Any | None = None) -> None:
        super().__init__()
        self.gen = as_iterator(gen)
        self.body = as_iterator(body) if body is not None else None

    def iterate(self) -> Iterator[Any]:
        iterator = self.gen.iterate()
        while True:
            try:
                result = next(iterator)
            except StopIteration:
                return
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return
            if isinstance(result, Suspension):
                yield result
                continue
            if self.body is None:
                continue
            try:
                yield from step_bounded(self.body)
            except NextSignal:
                continue
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return
