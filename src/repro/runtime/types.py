"""Icon-specific value types: csets and the null value convention.

Icon's *cset* (character set) underlies the string-analysis builtins
(``upto``, ``many``, ``any``, ``bal``) and the ``~``/``++``/``--``/``**``
operators.  Here a :class:`Cset` wraps a frozenset of single characters
over the 256-character Latin-1 universe (Icon's historical universe), so
complement is well defined.  Builtins accept plain strings or Python sets
wherever a cset is expected — :func:`need_cset` coerces.

Icon's null value maps to Python ``None``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from ..errors import IconTypeError

#: The Icon cset universe: Latin-1 (256 characters), per the classic
#: implementations.
UNIVERSE = frozenset(chr(code) for code in range(256))


class Cset:
    """An immutable character set with Icon's operator algebra."""

    __slots__ = ("chars",)

    def __init__(self, chars: Iterable[str] = ()) -> None:
        collected = set()
        for item in chars:
            if not isinstance(item, str):
                raise IconTypeError(f"cset member must be a character, got {item!r}")
            collected.update(item)  # strings contribute each character
        object.__setattr__(self, "chars", frozenset(collected))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Cset is immutable")

    # -- algebra ------------------------------------------------------------

    def union(self, other: "Cset") -> "Cset":
        return _wrap(self.chars | other.chars)

    def difference(self, other: "Cset") -> "Cset":
        return _wrap(self.chars - other.chars)

    def intersection(self, other: "Cset") -> "Cset":
        return _wrap(self.chars & other.chars)

    def complement(self) -> "Cset":
        return _wrap(UNIVERSE - self.chars)

    # -- container protocol --------------------------------------------------

    def __contains__(self, char: str) -> bool:
        return char in self.chars

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.chars))

    def __len__(self) -> int:
        return len(self.chars)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Cset):
            return self.chars == other.chars
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.chars)

    def __repr__(self) -> str:
        return f"Cset({self.string()!r})"

    def string(self) -> str:
        """The cset as a sorted string (Icon's string conversion)."""
        return "".join(sorted(self.chars))


def _wrap(chars: frozenset) -> Cset:
    cset = Cset.__new__(Cset)
    object.__setattr__(cset, "chars", chars)
    return cset


def need_cset(value: Any) -> Cset:
    """Coerce *value* to a cset (cset, string, or set of characters)."""
    if isinstance(value, Cset):
        return value
    if isinstance(value, str):
        return Cset(value)
    if isinstance(value, (set, frozenset)):
        return Cset(value)
    if isinstance(value, (int, float)):
        return Cset(str(value))
    raise IconTypeError(f"cset expected, got {type(value).__name__}")


#: Common csets, as provided by Icon keywords.
ASCII = _wrap(frozenset(chr(code) for code in range(128)))
CSET_ALL = _wrap(UNIVERSE)
DIGITS = Cset("0123456789")
LCASE = Cset("abcdefghijklmnopqrstuvwxyz")
UCASE = Cset("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
LETTERS = _wrap(LCASE.chars | UCASE.chars)
