"""Subscripting, sectioning, and field access with Icon semantics.

Icon positions are 1-based and lie *between* elements: position 1 precedes
the first element, position 0 is a synonym for the position after the last,
-1 for the position before the last, and so on.  Out-of-range subscripts
and sections **fail** (they are not errors), which lets goal-directed code
probe structures safely.

Subscripted results are variables where the underlying store is mutable:
``L[i]`` can be assigned.  A subscripted *string variable* is assignable
too — Icon rebuilds the string and stores it back — which
:class:`StringRef` reproduces when the subject expression yielded a
variable.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import IconTypeError
from .failure import FAIL
from .iterator import IconIterator, as_iterator
from .refs import FieldRef, ListRef, ReadOnlyRef, Ref, TableRef, deref
from .operations import need_integer


def resolve_position(pos: int, length: int) -> int | None:
    """Map an Icon position onto 0-based space; None when out of range.

    Valid Icon positions run 1..length+1 (or the nonpositive synonyms
    0..-length).  The returned value is the 0-based *gap* index in
    ``0..length``.
    """
    if pos >= 1:
        zero_based = pos - 1
    else:
        zero_based = length + pos
    if 0 <= zero_based <= length:
        return zero_based
    return None


def resolve_element(pos: int, length: int) -> int | None:
    """Map an Icon element subscript onto a 0-based element index."""
    gap = resolve_position(pos, length)
    if gap is None or gap >= length:
        return None
    return gap


class StringRef(Ref):
    """Assignable one-character slice of a string held in a variable.

    ``s[3] := "x"`` replaces the third character of the string bound to
    ``s`` — Icon rebuilds the (immutable) string and re-assigns the
    variable; so do we.
    """

    __slots__ = ("subject", "index")

    def __init__(self, subject: Ref, index: int) -> None:
        self.subject = subject
        self.index = index

    def get(self) -> str:
        return self.subject.get()[self.index]

    def set(self, value: Any) -> Any:
        text = self.subject.get()
        if not isinstance(value, str):
            raise IconTypeError("string subscript assignment needs a string")
        self.subject.set(text[: self.index] + value + text[self.index + 1:])
        return value


class IconIndex(IconIterator):
    """``e1[e2]`` — subscript; yields a variable where possible."""

    __slots__ = ("subject", "index")

    def __init__(self, subject: Any, index: Any) -> None:
        super().__init__()
        self.subject = as_iterator(subject)
        self.index = as_iterator(index)

    def iterate(self) -> Iterator[Any]:
        for subject_result in self.subject.iterate():
            subject = deref(subject_result)
            for index_result in self.index.iterate():
                index = deref(index_result)
                produced = _subscript(subject_result, subject, index)
                if produced is not FAIL:
                    yield produced


def _subscript(subject_result: Any, subject: Any, index: Any) -> Any:
    if isinstance(subject, dict):
        return TableRef(subject, index)
    if isinstance(subject, list):
        element = resolve_element(need_integer(index), len(subject))
        if element is None:
            return FAIL
        return ListRef(subject, element)
    if isinstance(subject, str):
        element = resolve_element(need_integer(index), len(subject))
        if element is None:
            return FAIL
        if isinstance(subject_result, Ref):
            return StringRef(subject_result, element)
        return ReadOnlyRef(subject[element])
    if isinstance(subject, tuple):
        element = resolve_element(need_integer(index), len(subject))
        if element is None:
            return FAIL
        return ReadOnlyRef(subject[element])
    # Fall back to host indexing for foreign containers (numpy arrays, …).
    try:
        return ReadOnlyRef(subject[index])
    except (TypeError, KeyError, IndexError) as exc:
        raise IconTypeError(
            f"cannot subscript {type(subject).__name__}"
        ) from exc


class IconSection(IconIterator):
    """``e1[e2:e3]`` (and ``+:``/``-:`` forms) — substring / sublist.

    Sections produce *values* (a new list, a substring); out-of-range
    bounds fail.  ``mode`` is ``":"``, ``"+:"`` or ``"-:"``.
    """

    __slots__ = ("subject", "low", "high", "mode")

    def __init__(self, subject: Any, low: Any, high: Any, mode: str = ":") -> None:
        super().__init__()
        if mode not in (":", "+:", "-:"):
            raise ValueError(f"bad section mode {mode!r}")
        self.subject = as_iterator(subject)
        self.low = as_iterator(low)
        self.high = as_iterator(high)
        self.mode = mode

    def iterate(self) -> Iterator[Any]:
        for subject_result in self.subject.iterate():
            subject = deref(subject_result)
            if not isinstance(subject, (str, list, tuple)):
                raise IconTypeError(
                    f"cannot section {type(subject).__name__}"
                )
            length = len(subject)
            for low_result in self.low.iterate():
                low_pos = need_integer(deref(low_result))
                for high_result in self.high.iterate():
                    high_raw = need_integer(deref(high_result))
                    section = _section(subject, length, low_pos, high_raw, self.mode)
                    if section is not FAIL:
                        yield section


def _section(subject: Any, length: int, low_pos: int, high_raw: int, mode: str) -> Any:
    start = resolve_position(low_pos, length)
    if start is None:
        return FAIL
    if mode == ":":
        end = resolve_position(high_raw, length)
    elif mode == "+:":
        end = start + high_raw
    else:  # "-:"
        end = start - high_raw
    if end is None or not 0 <= end <= length:
        return FAIL
    if end < start:
        start, end = end, start
    piece = subject[start:end]
    if isinstance(subject, list):
        return list(piece)
    return piece


class IconField(IconIterator):
    """``e.name`` — field access; yields an updatable field variable."""

    __slots__ = ("subject", "name")

    def __init__(self, subject: Any, name: str) -> None:
        super().__init__()
        self.subject = as_iterator(subject)
        self.name = name

    def iterate(self) -> Iterator[Any]:
        for subject_result in self.subject.iterate():
            subject = deref(subject_result)
            if isinstance(subject, dict):
                yield TableRef(subject, self.name)
                continue
            if not hasattr(subject, self.name):
                raise IconTypeError(
                    f"{type(subject).__name__} has no field {self.name!r}"
                )
            yield FieldRef(subject, self.name)
