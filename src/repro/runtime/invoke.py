"""Invocation — generator functions, native calls, method bodies (V.C-D).

Icon invocation ``f(e1, e2)`` iterates the cross product of the function
expression and the argument expressions, then invokes.  What happens to the
call's result depends on what was invoked (paper Section V.A):

* an embedded (Junicon) generator function returns an iterator — iteration
  is *delegated* to it;
* a plain host method's result is *promoted to a singleton iterator*.

Host Python is friendlier than Java here: a Python generator function's
call result is itself a suspendable iterator, so delegation extends to any
host function that returns a generator — plain Python generator functions
participate in goal-directed evaluation unmodified.  The ``::`` operator
(native invocation) always forces the promote-to-singleton rule, exactly as
the paper uses it to differentiate Java method calls.

:class:`IconMethodBody` is the procedure-body wrapper emitted by the
transformer (Figure 5): it owns parameter unpacking, converts
``return``/``fail`` signals and suspension envelopes into caller-visible
results, and parks finished bodies in a :class:`MethodBodyCache`.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterator

from ..errors import IconNotAFunctionError
from .cache import MethodBodyCache
from .failure import FAIL, FailSignal, ReturnSignal, Suspension
from .iterator import IconIterator, as_iterator
from .refs import deref


def icon_function(fn: Callable) -> Callable:
    """Mark a host function as a goal-directed generator function.

    The call result (an iterator/generator, or :data:`FAIL` for immediate
    failure) has its iteration delegated instead of being promoted to a
    singleton.  Python generator functions are auto-detected even without
    the decorator; use it for functions that *return* iterators indirectly.
    """
    fn._icon_function = True  # type: ignore[attr-defined]
    return fn


def is_generator_function(fn: Any) -> bool:
    """True when invoking *fn* should delegate iteration to its result."""
    if getattr(fn, "_icon_function", False):
        return True
    target = getattr(fn, "__func__", fn)
    return inspect.isgeneratorfunction(target)


def iterate_call_result(result: Any) -> Iterator[Any]:
    """Iterate whatever an invocation produced (delegation rules)."""
    if result is FAIL:
        return
    if isinstance(result, IconIterator):
        yield from result.iterate()
        return
    if hasattr(result, "__next__"):  # a live generator/iterator: delegate
        yield from result
        return
    yield result


class IconInvokeIterator(IconIterator):
    """Delegate iteration to the value produced by a closure (Figure 5).

    The normalizer reduces every call to ``IconInvokeIterator(lambda:
    f_tmp.deref()(x_tmp.deref(), ...))``; each pass re-invokes the closure,
    which re-reads the bound temporaries — that is what makes products
    re-evaluate calls during backtracking.
    """

    __slots__ = ("closure",)

    def __init__(self, closure: Callable[[], Any]) -> None:
        super().__init__()
        self.closure = closure

    def iterate(self) -> Iterator[Any]:
        # Inlined iterate_call_result: this is the hottest path in
        # translated code (once per invocation per backtrack), and the
        # plain-value case should not pay for an extra generator frame.
        result = self.closure()
        if result is FAIL:
            return
        if isinstance(result, IconIterator):
            yield from result.iterate()
        elif hasattr(result, "__next__"):
            yield from result
        else:
            yield result


class IconInvoke(IconIterator):
    """``f(e1, ..., en)`` — full invocation over operand generators.

    Used by the interpreter and by hand-written host code; generated code
    uses the normalized :class:`IconInvokeIterator` form instead.  Icon's
    *mutual evaluation* is included: when the "function" is an integer
    ``i``, the call yields the value of the i-th argument.
    """

    __slots__ = ("callee", "args", "native")

    def __init__(self, callee: Any, *args: Any, native: bool = False) -> None:
        super().__init__()
        self.callee = as_iterator(callee)
        self.args = tuple(as_iterator(arg) for arg in args)
        self.native = native

    def iterate(self) -> Iterator[Any]:
        for callee_result in self.callee.iterate():
            callee = deref(callee_result)
            yield from self._cross(callee, 0, [])

    def _cross(self, callee: Any, index: int, values: list) -> Iterator[Any]:
        if index == len(self.args):
            yield from self._apply(callee, values)
            return
        for result in self.args[index].iterate():
            values.append(deref(result))
            yield from self._cross(callee, index + 1, values)
            values.pop()

    def _apply(self, callee: Any, values: list) -> Iterator[Any]:
        if isinstance(callee, int) and not isinstance(callee, bool):
            # Mutual evaluation: i(e1, ..., en) selects the i-th argument.
            position = callee if callee > 0 else len(values) + callee + 1
            if 1 <= position <= len(values):
                yield values[position - 1]
            return
        if isinstance(callee, str):
            # String invocation: resolve the procedure name (builtins).
            from .functions import BUILTINS

            resolved = BUILTINS.get(callee)
            if callable(resolved):
                yield from self._apply(resolved, values)
            return
        if not callable(callee):
            raise IconNotAFunctionError(
                f"invocation of a {type(callee).__name__} value"
            )
        result = callee(*values)
        if self.native and not isinstance(result, IconIterator):
            if result is not FAIL:
                yield result
            return
        if (
            isinstance(result, IconIterator)
            or is_generator_function(callee)
            or hasattr(result, "__next__")
        ):
            yield from iterate_call_result(result)
        elif result is not FAIL:
            yield result


class IconOptimizedBody(IconIterator):
    """The root wrapper of an *optimized* (natively lowered) procedure body.

    The optimizing compile target (:mod:`repro.lang.optimize`) emits the
    procedure body as one straight Python generator function — results are
    yielded directly instead of travelling in :class:`Suspension`
    envelopes, so :class:`IconMethodBody`'s discard-ordinary-results rule
    does not apply.  What remains shared with the interpreted wrapper is
    the outer contract: ``return``/``fail`` signals raised by embedded
    fallback subtrees convert to a final result / failure, and finished
    bodies recycle through the same :class:`MethodBodyCache`.
    """

    __slots__ = ("_fn", "_unpack", "_cache", "_cache_key")

    def __init__(self, fn: Callable[[], Iterator[Any]], unpack: Callable[..., Any] | None = None) -> None:
        super().__init__()
        self._fn = fn
        self._unpack = unpack
        self._cache: MethodBodyCache | None = None
        self._cache_key: str = ""

    def set_unpack_closure(self, unpack: Callable[..., Any]) -> "IconOptimizedBody":
        self._unpack = unpack
        return self

    def unpack_args(self, *args: Any) -> "IconOptimizedBody":
        if self._unpack is not None:
            self._unpack(*args)
        return self

    def set_cache(self, cache: MethodBodyCache, key: str) -> "IconOptimizedBody":
        self._cache = cache
        self._cache_key = key
        return self

    def iterate(self) -> Iterator[Any]:
        try:
            yield from self._fn()
        except ReturnSignal as signal:
            if signal.value is not FAIL:
                yield signal.value
        except FailSignal:
            pass
        finally:
            if self._cache is not None:
                self._cache.release(self._cache_key, self)

    # Aliases matching IconMethodBody's fluent spelling.
    setUnpackClosure = set_unpack_closure
    unpackArgs = unpack_args
    setCache = set_cache


class IconMethodBody(IconIterator):
    """The root wrapper of a translated procedure body.

    Drives the body statements, unwrapping :class:`Suspension` envelopes
    into caller-visible results, converting ``return``/``fail`` signals,
    and recycling itself through the :class:`MethodBodyCache` when done.
    Falling off the end of a procedure **fails** (no results), per Icon.
    """

    __slots__ = ("body", "_unpack", "_cache", "_cache_key")

    def __init__(self, body: Any, unpack: Callable[..., Any] | None = None) -> None:
        super().__init__()
        self.body = as_iterator(body)
        self._unpack = unpack
        self._cache: MethodBodyCache | None = None
        self._cache_key: str = ""

    # Fluent API mirroring the paper's generated code.

    def set_unpack_closure(self, unpack: Callable[..., Any]) -> "IconMethodBody":
        self._unpack = unpack
        return self

    def unpack_args(self, *args: Any) -> "IconMethodBody":
        if self._unpack is not None:
            self._unpack(*args)
        return self

    def set_cache(self, cache: MethodBodyCache, key: str) -> "IconMethodBody":
        self._cache = cache
        self._cache_key = key
        return self

    def iterate(self) -> Iterator[Any]:
        try:
            for result in self.body.iterate():
                if isinstance(result, Suspension):
                    yield result.value
                # Ordinary results of the trailing statement are discarded:
                # a procedure only produces results via suspend/return.
        except ReturnSignal as signal:
            if signal.value is not FAIL:
                yield signal.value
        except FailSignal:
            pass
        finally:
            if self._cache is not None:
                self._cache.release(self._cache_key, self)

    # Aliases so emitted code can read like the paper's Figure 5.
    setUnpackClosure = set_unpack_closure
    unpackArgs = unpack_args
    setCache = set_cache
