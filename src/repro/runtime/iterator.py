"""The suspendable, failure-driven iterator kernel (paper Section V.B).

A single kernel contract underlies every composed form:

* ``iterate()`` returns a fresh Python generator over the expression's
  *successful results* (possibly :class:`~repro.runtime.refs.Ref` objects,
  preserving Icon's reference semantics).  Exhaustion of the generator *is*
  failure.  Calling ``iterate()`` again restarts the expression from its
  beginning state — the paper's ``^`` (restart) and the re-evaluation that
  product/alternation perform on their right operands.

* ``next_value()`` is the stateful stepping API used by the ``@`` operator
  and by host code: it returns the next result or the :data:`FAIL`
  sentinel.  Matching the paper's kernel ("After failure, the iterator is
  then restarted on the following ``next()``"), a failed iterator restarts
  on the next call.

* Plain Python iteration (``for x in node``) walks one full pass of
  dereferenced results and stops at failure — this is how embedded
  expressions surface as host iterators (Figure 3 uses one in a Java
  ``for`` statement).

The paper implements suspension with an explicit state machine because Java
lacks ``yield``; Python generators provide suspension natively, so here each
node's ``iterate()`` is written as a generator and the kernel preserves the
paper's *API* (failure-driven ``next``, restart, composition forms) rather
than its state-machine internals.  DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .failure import FAIL, Suspension
from .refs import Ref, deref


def step_bounded(node: "IconIterator"):
    """Drive *node* as a bounded expression inside a procedure body.

    A generator to be used as ``outcome = yield from step_bounded(n)``:
    re-yields any :class:`~repro.runtime.failure.Suspension` envelopes so
    suspended results keep travelling toward the procedure root, and
    *returns* the statement's single ordinary outcome (or :data:`FAIL`).
    """
    for result in node.iterate():
        if isinstance(result, Suspension):
            yield result
            continue
        return result
    return FAIL


def unwrap(result: Any) -> Any:
    """Strip a suspension envelope (host-facing boundaries only)."""
    if isinstance(result, Suspension):
        return result.value
    return result


class IconIterator:
    """Base class of every composed goal-directed expression node."""

    __slots__ = ("_active",)

    def __init__(self) -> None:
        self._active: Iterator[Any] | None = None

    # -- core contract ------------------------------------------------------

    def iterate(self) -> Iterator[Any]:
        """Return a fresh generator over this expression's results."""
        raise NotImplementedError

    # -- stateful stepping (the @ operator / host-facing next) ---------------

    def next_value(self) -> Any:
        """Produce the next result, or :data:`FAIL`.

        Failure resets the stored generator so a subsequent call restarts
        the expression, per the paper's kernel contract.
        """
        if self._active is None:
            self._active = self.iterate()
        try:
            return unwrap(next(self._active))
        except StopIteration:
            self._active = None
            return FAIL

    def restart(self) -> "IconIterator":
        """Reset stepping state so the next ``next_value`` starts over."""
        active, self._active = self._active, None
        if active is not None:
            close = getattr(active, "close", None)
            if close is not None:
                close()
        return self

    # Kept as an alias because the paper's generated code calls ``reset()``.
    reset = restart

    # -- host-language integration -------------------------------------------

    def __iter__(self) -> Iterator[Any]:
        """One full pass of dereferenced results (host-facing view)."""
        for result in self.iterate():
            yield deref(unwrap(result))

    def values(self) -> Iterator[Any]:
        """Alias of ``iter(self)`` for call-site readability."""
        return iter(self)

    def first(self, default: Any = FAIL) -> Any:
        """Dereferenced first result, or *default* if the expression fails."""
        for result in self.iterate():
            return deref(unwrap(result))
        return default

    def exists(self) -> bool:
        """True when the expression produces at least one result."""
        for _ in self.iterate():
            return True
        return False

    def last(self, default: Any = FAIL) -> Any:
        """Dereferenced final result, or *default* on immediate failure."""
        value = default
        for result in self.iterate():
            value = deref(unwrap(result))
        return value

    def list(self) -> list:
        """All dereferenced results as a list (terminates only if e does)."""
        return [deref(unwrap(result)) for result in self.iterate()]


class IconGenerator(IconIterator):
    """Adapter over a zero-argument *factory* of Python iterables.

    The general-purpose bridge from host code into the kernel: the factory
    is invoked anew on every pass, which is what makes the node restartable.
    ``IconGenerator(lambda: range(3))`` behaves like the Icon expression
    ``0 to 2``.
    """

    __slots__ = ("_factory",)

    def __init__(self, factory: Callable[[], Iterable[Any]]) -> None:
        super().__init__()
        self._factory = factory

    def iterate(self) -> Iterator[Any]:
        yield from self._factory()


class IconValue(IconIterator):
    """Singleton iterator producing one already-computed value.

    The translation of a literal, and of "lifting" a plain host value into
    goal-directed evaluation (``<>e`` over a constant).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        super().__init__()
        self.value = value

    def iterate(self) -> Iterator[Any]:
        # A tuple iterator instead of a generator: literals are everywhere
        # in translated code and the C-level iterator has no frame cost.
        return iter((self.value,))


class IconLazy(IconIterator):
    """Singleton iterator over a deferred host computation.

    ``IconLazy(thunk)`` evaluates ``thunk()`` afresh on each pass and
    succeeds exactly once with its result.  This is the translation of a
    ``@<script lang="python">`` region embedded *inside* Junicon code: the
    paper lifts native code "into a singleton iterator over its closure".
    """

    __slots__ = ("_thunk",)

    def __init__(self, thunk: Callable[[], Any]) -> None:
        super().__init__()
        self._thunk = thunk

    def iterate(self) -> Iterator[Any]:
        yield self._thunk()


class IconNullIterator(IconIterator):
    """Produces the null value (None) exactly once.

    Appears in generated method bodies (Figure 5) as the default outcome of
    a body that runs off its end.
    """

    __slots__ = ()

    def iterate(self) -> Iterator[Any]:
        return iter((None,))


class IconFail(IconIterator):
    """The empty iterator — fails immediately, producing nothing."""

    __slots__ = ()

    def iterate(self) -> Iterator[Any]:
        return iter(())


class IconVarIterator(IconIterator):
    """Singleton iterator yielding a reference itself (not its value).

    The translation of a bare variable in result position: Icon expressions
    yield *variables* so the result can be assigned.
    """

    __slots__ = ("ref",)

    def __init__(self, ref: Ref) -> None:
        super().__init__()
        self.ref = ref

    def iterate(self) -> Iterator[Any]:
        return iter((self.ref,))


def as_iterator(value: Any) -> IconIterator:
    """Coerce *value* to an :class:`IconIterator`.

    Existing nodes pass through; refs become variable iterators; anything
    else — including callables, which are first-class *values* in Icon —
    becomes a singleton.  To adapt a factory of Python iterables, construct
    :class:`IconGenerator` explicitly.
    """
    if isinstance(value, IconIterator):
        return value
    if isinstance(value, Ref):
        return IconVarIterator(value)
    return IconValue(value)
