"""Method-body cache (paper Figure 5: "For optimization the iterator body
is cached in a stack upon method return, and then reused").

Building a method body allocates the full tree of iterator nodes plus the
reified parameter cells.  Because a body is reusable after it finishes (its
``iterate`` restarts from scratch and ``unpack_args`` rebinds parameters),
completed bodies are parked per method name and handed back to later
invocations.  Concurrent invocations are safe: a body is only in the cache
while *no* invocation is using it, so two overlapping calls simply build
two bodies.

The free stacks are :class:`collections.deque` instances — their append
and pop are atomic under CPython, so the per-call fast path takes no lock
(method calls are the hottest operation in translated code, and pipes call
methods from many threads).

The cache can be disabled globally (``enabled=False``) — the ablation bench
A3 measures exactly this switch.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict


class MethodBodyCache:
    """A per-instance stack cache of free method bodies, keyed by name."""

    #: Class-wide switch (ablation A3); instances also take a local flag.
    enabled_globally: bool = True

    def __init__(self, max_per_method: int = 8, enabled: bool = True) -> None:
        if max_per_method < 0:
            raise ValueError("max_per_method must be >= 0")
        self.max_per_method = max_per_method
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._free: Dict[str, deque] = {}

    def get_free(self, key: str) -> Any | None:
        """Pop a free body for *key*, or None (caller then builds one)."""
        if not (self.enabled and MethodBodyCache.enabled_globally):
            self.misses += 1
            return None
        stack = self._free.get(key)
        if stack:
            try:
                body = stack.pop()  # atomic under CPython
            except IndexError:
                self.misses += 1
                return None
            self.hits += 1
            return body
        self.misses += 1
        return None

    def release(self, key: str, body: Any) -> None:
        """Return a finished body to the free stack (drop when full).

        Double-release of the same body is tolerated: duplicates in the
        stack would alias reified parameter cells, so they are filtered.
        """
        if not (self.enabled and MethodBodyCache.enabled_globally):
            return
        stack = self._free.get(key)
        if stack is None:
            stack = self._free.setdefault(key, deque(maxlen=self.max_per_method))
        if any(parked is body for parked in stack):
            return
        stack.append(body)

    def clear(self) -> None:
        self._free.clear()

    def stats(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}

    # The paper's generated Java calls `getFree`; keep the alias so the
    # emitted Python can read like Figure 5.
    getFree = get_free
