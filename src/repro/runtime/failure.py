"""Failure sentinel and control-flow signals for goal-directed evaluation.

In Icon and Unicon every expression either *succeeds* — producing a value —
or *fails*, producing nothing.  Failure is not an error: it terminates the
enclosing iterator and drives backtracking.  The paper's Java kernel models
this with ``hasNext()`` testing for failure of ``next()``; here the stateful
stepping API returns the unique :data:`FAIL` sentinel instead of a value.

Loop and procedure control flow (``break``/``next``/``return``/``fail``) is
modelled with signal exceptions that propagate up through the composed
generator frames until the matching construct catches them.  They are *not*
user-visible errors.
"""

from __future__ import annotations

from typing import Any


class _FailSentinel:
    """Unique sentinel returned by ``next_value`` when an iterator fails.

    Falsy, unpicklable-by-identity-comparison friendly, and a singleton so
    that ``value is FAIL`` is the one correct test.
    """

    _instance: "_FailSentinel | None" = None

    def __new__(cls) -> "_FailSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "FAIL"

    def __reduce__(self):  # keep the singleton property across pickling
        return (_FailSentinel, ())


#: The unique failure sentinel.  ``expr.next_value() is FAIL`` means the
#: expression produced no (further) result.
FAIL = _FailSentinel()


def succeeded(value: Any) -> bool:
    """Return True when *value* is an actual result, not failure."""
    return value is not FAIL


class Suspension:
    """Envelope carrying a ``suspend``-ed result up to the procedure root.

    Bounded evaluation limits a statement to one *ordinary* outcome, but a
    ``suspend`` nested anywhere inside the statement must still deliver
    every result to the procedure's caller ("suspend will return a value
    that is propagated up as the result of the root iterator's next").
    Constructs that bound their children therefore re-yield
    :class:`Suspension` envelopes unconsumed; the method-body root unwraps
    them into caller-visible results.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Suspension({self.value!r})"


class ControlSignal(Exception):
    """Base class for non-error control-flow signals.

    These deliberately subclass :class:`Exception` (not ``BaseException``)
    so that a signal escaping the constructs that should consume it is
    still visible in tests, but they carry no error semantics.
    """


class BreakSignal(ControlSignal):
    """``break e`` — terminate the nearest enclosing loop.

    Icon's ``break`` takes an optional expression whose outcome becomes the
    outcome of the loop; ``value_iterator`` is the un-evaluated runtime node
    (or None for a bare ``break``).
    """

    def __init__(self, value_iterator: Any = None) -> None:
        super().__init__("break outside loop")
        self.value_iterator = value_iterator


class NextSignal(ControlSignal):
    """``next`` — continue with the next iteration of the enclosing loop."""

    def __init__(self) -> None:
        super().__init__("next outside loop")


class ReturnSignal(ControlSignal):
    """``return e`` — terminate the enclosing procedure with e's result.

    ``value`` is the already-computed result, or :data:`FAIL` when the
    returned expression itself failed (Icon: ``return e`` with failing *e*
    makes the procedure fail).
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__("return outside procedure")
        self.value = value


class FailSignal(ControlSignal):
    """``fail`` — terminate the enclosing procedure with failure."""

    def __init__(self) -> None:
        super().__init__("fail outside procedure")
