"""Goal-directed evaluation runtime — the suspendable iterator kernel.

This package is the substrate everything else builds on: the paper's
``IconIterator`` kernel (failure-driven, suspendable, restartable) plus the
composition forms, Icon operator semantics, reference semantics, promotion,
invocation, built-in functions, and string scanning.

Quick taste (the paper's prime-multiples example from Section II.A)::

    from repro.runtime import IconOperation, IconToBy, IconInvoke, operations

    def isprime(n):
        if n >= 2 and all(n % d for d in range(2, int(n ** 0.5) + 1)):
            yield n

    expr = IconOperation(
        operations.times,
        IconToBy(1, 2),
        IconInvoke(isprime, IconToBy(4, 7)),
    )
    assert list(expr) == [5, 7, 10, 14]
"""

from .failure import (
    FAIL,
    BreakSignal,
    ControlSignal,
    FailSignal,
    NextSignal,
    ReturnSignal,
    Suspension,
    succeeded,
)
from .refs import (
    FieldRef,
    IconTmp,
    IconVar,
    ListRef,
    ReadOnlyRef,
    Ref,
    TableRef,
    assign,
    deref,
)
from .iterator import (
    IconGenerator,
    IconIterator,
    IconLazy,
    IconFail,
    IconNullIterator,
    IconValue,
    IconVarIterator,
    as_iterator,
    step_bounded,
    unwrap,
)
from .combinators import (
    IconBound,
    IconConcat,
    IconEvery,
    IconIn,
    IconLimit,
    IconNot,
    IconProduct,
    IconRepeatAlt,
    IconSequence,
)
from .control import (
    IconBreak,
    IconCase,
    IconFailStmt,
    IconIf,
    IconNext,
    IconRepeat,
    IconReturn,
    IconSuspend,
    IconUntil,
    IconWhile,
)
from .operations import (
    BINARY_OPS,
    IconAssign,
    IconDeref,
    IconNonNullTest,
    IconNullTest,
    IconOperation,
    IconRevAssign,
    IconRevSwap,
    IconSwap,
    IconToBy,
    UNARY_OPS,
    need_integer,
    need_number,
    need_string,
    operation,
    seed_random,
)
from .access import IconField, IconIndex, IconSection, StringRef
from .promote import IconActivate, IconPromote, activate_value, promote_value
from .invoke import (
    IconInvoke,
    IconInvokeIterator,
    IconMethodBody,
    icon_function,
    is_generator_function,
)
from .cache import MethodBodyCache
from .functions import BUILTINS, keyword, set_keyword
from .scanning import IconScan, ScanEnv
from .types import Cset, need_cset

from . import operations
from . import functions
from . import scanning

__all__ = [
    "FAIL",
    "BUILTINS",
    "BINARY_OPS",
    "UNARY_OPS",
    "BreakSignal",
    "ControlSignal",
    "Cset",
    "FailSignal",
    "FieldRef",
    "IconActivate",
    "IconAssign",
    "IconBound",
    "IconBreak",
    "IconCase",
    "IconConcat",
    "IconDeref",
    "IconEvery",
    "IconFail",
    "IconFailStmt",
    "IconField",
    "IconGenerator",
    "IconIf",
    "IconIn",
    "IconIndex",
    "IconInvoke",
    "IconInvokeIterator",
    "IconIterator",
    "IconLazy",
    "IconLimit",
    "IconMethodBody",
    "IconNext",
    "IconNonNullTest",
    "IconNot",
    "IconNullIterator",
    "IconNullTest",
    "IconOperation",
    "IconProduct",
    "IconPromote",
    "IconRepeat",
    "IconRepeatAlt",
    "IconReturn",
    "IconRevAssign",
    "IconRevSwap",
    "IconScan",
    "IconSection",
    "IconSequence",
    "IconSuspend",
    "IconSwap",
    "IconTmp",
    "IconToBy",
    "IconUntil",
    "IconValue",
    "IconVar",
    "IconVarIterator",
    "IconWhile",
    "ListRef",
    "MethodBodyCache",
    "NextSignal",
    "ReadOnlyRef",
    "Ref",
    "ReturnSignal",
    "ScanEnv",
    "StringRef",
    "Suspension",
    "TableRef",
    "activate_value",
    "as_iterator",
    "assign",
    "deref",
    "functions",
    "icon_function",
    "is_generator_function",
    "keyword",
    "need_cset",
    "need_integer",
    "need_number",
    "need_string",
    "operation",
    "operations",
    "promote_value",
    "scanning",
    "seed_random",
    "set_keyword",
    "step_bounded",
    "succeeded",
    "unwrap",
]
