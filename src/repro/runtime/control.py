"""Control constructs as iterator subtypes (paper: "Subtypes of the
IconIterator class built using the stream operations are then used as
abbreviations for constructs such as while").

Every construct follows Icon's outcome rules:

* ``if e1 then e2 else e3`` — bounded test, then the selected branch is a
  full generator whose results are the expression's results.
* ``while``/``until``/``repeat`` loops evaluate their clauses as bounded
  expressions and *fail* when they terminate normally; ``break e`` gives
  the loop e's outcome instead.
* ``case`` selects the first branch whose selector matches (``===``) the
  bounded subject value.
* ``suspend e [do e2]`` delivers each of e's results to the procedure's
  caller (wrapped in :class:`~repro.runtime.failure.Suspension` envelopes
  that ride past bounded statements), running the do-clause after each
  resumption.
* ``return e`` / ``fail`` terminate the procedure; they are signals caught
  by :class:`~repro.runtime.invoke.IconMethodBody`.

All clause evaluation goes through
:func:`~repro.runtime.iterator.step_bounded` so that suspensions nested in
loop bodies still reach the procedure root.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Tuple

from .failure import (
    FAIL,
    BreakSignal,
    FailSignal,
    NextSignal,
    ReturnSignal,
    Suspension,
)
from .iterator import IconIterator, as_iterator, step_bounded
from .refs import deref


class IconIf(IconIterator):
    """``if e1 then e2 else e3``."""

    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: Any, then: Any, orelse: Any | None = None) -> None:
        super().__init__()
        self.cond = as_iterator(cond)
        self.then = as_iterator(then)
        self.orelse = as_iterator(orelse) if orelse is not None else None

    def iterate(self) -> Iterator[Any]:
        outcome = yield from step_bounded(self.cond)
        if outcome is not FAIL:
            yield from self.then.iterate()
        elif self.orelse is not None:
            yield from self.orelse.iterate()


class IconWhile(IconIterator):
    """``while e1 do e2`` — loop while the bounded test succeeds; fails."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Any, body: Any | None = None) -> None:
        super().__init__()
        self.cond = as_iterator(cond)
        self.body = as_iterator(body) if body is not None else None

    def iterate(self) -> Iterator[Any]:
        while True:
            try:
                outcome = yield from step_bounded(self.cond)
            except NextSignal:
                continue
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return
            if outcome is FAIL:
                return
            if self.body is None:
                continue
            try:
                yield from step_bounded(self.body)
            except NextSignal:
                continue
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return


class IconUntil(IconIterator):
    """``until e1 do e2`` — loop until the bounded test succeeds; fails."""

    __slots__ = ("cond", "body")

    def __init__(self, cond: Any, body: Any | None = None) -> None:
        super().__init__()
        self.cond = as_iterator(cond)
        self.body = as_iterator(body) if body is not None else None

    def iterate(self) -> Iterator[Any]:
        while True:
            try:
                outcome = yield from step_bounded(self.cond)
            except NextSignal:
                continue
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return
            if outcome is not FAIL:
                return
            if self.body is None:
                continue
            try:
                yield from step_bounded(self.body)
            except NextSignal:
                continue
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return


class IconRepeat(IconIterator):
    """``repeat e`` — evaluate the bounded body forever (until break)."""

    __slots__ = ("body",)

    def __init__(self, body: Any) -> None:
        super().__init__()
        self.body = as_iterator(body)

    def iterate(self) -> Iterator[Any]:
        while True:
            try:
                yield from step_bounded(self.body)
            except NextSignal:
                continue
            except BreakSignal as signal:
                if signal.value_iterator is not None:
                    yield from as_iterator(signal.value_iterator).iterate()
                return


class IconCase(IconIterator):
    """``case e of { s1: b1 ; s2: b2 ; default: bd }``.

    The subject is a bounded expression; each selector is iterated and the
    first selector result equal (``===``) to the subject selects its
    branch.  With no match and no default the case expression fails.
    """

    __slots__ = ("subject", "branches", "default")

    def __init__(
        self,
        subject: Any,
        branches: Sequence[Tuple[Any, Any]],
        default: Any | None = None,
    ) -> None:
        super().__init__()
        self.subject = as_iterator(subject)
        self.branches = tuple(
            (as_iterator(sel), as_iterator(body)) for sel, body in branches
        )
        self.default = as_iterator(default) if default is not None else None

    def iterate(self) -> Iterator[Any]:
        subject = yield from step_bounded(self.subject)
        if subject is FAIL:
            return
        subject = deref(subject)
        for selector, body in self.branches:
            for candidate in selector.iterate():
                if isinstance(candidate, Suspension):
                    yield candidate
                    continue
                if _case_match(deref(candidate), subject):
                    yield from body.iterate()
                    return
        if self.default is not None:
            yield from self.default.iterate()


def case_match(candidate: Any, subject: Any) -> bool:
    """Icon's ``===`` matching rule used by ``case`` branch selection.

    Public because the optimizing compile target emits direct calls to it
    when lowering ``case`` to native Python control flow.
    """
    return _case_match(candidate, subject)


def _case_match(candidate: Any, subject: Any) -> bool:
    if isinstance(candidate, (list, dict, set)) or isinstance(subject, (list, dict, set)):
        return candidate is subject
    return type(candidate) is type(subject) and candidate == subject or (
        isinstance(candidate, (int, float))
        and isinstance(subject, (int, float))
        and not isinstance(candidate, bool)
        and not isinstance(subject, bool)
        and candidate == subject
    )


class IconSuspend(IconIterator):
    """``suspend e [do e2]`` — deliver each result of *e* to the caller.

    Results are wrapped in :class:`Suspension` envelopes so that enclosing
    bounded statements pass them through to the procedure root, where
    :class:`~repro.runtime.invoke.IconMethodBody` unwraps them.  On
    resumption the optional do-clause runs as a bounded expression.
    As a statement, ``suspend`` itself fails once *e* is exhausted.
    """

    __slots__ = ("expr", "do_clause")

    def __init__(self, expr: Any, do_clause: Any | None = None) -> None:
        super().__init__()
        self.expr = as_iterator(expr)
        self.do_clause = as_iterator(do_clause) if do_clause is not None else None

    def iterate(self) -> Iterator[Any]:
        for result in self.expr.iterate():
            if isinstance(result, Suspension):
                yield result  # a nested suspend's envelope: pass through
                continue
            yield Suspension(result)
            if self.do_clause is not None:
                yield from step_bounded(self.do_clause)


class IconReturn(IconIterator):
    """``return e`` — signal procedure termination with e's first result.

    If *e* fails, the procedure fails (Icon semantics): the signal carries
    :data:`FAIL` and the method body turns it into failure.
    """

    __slots__ = ("expr",)

    def __init__(self, expr: Any | None = None) -> None:
        super().__init__()
        self.expr = as_iterator(expr) if expr is not None else None

    def iterate(self) -> Iterator[Any]:
        if self.expr is None:
            raise ReturnSignal(None)
        outcome = yield from step_bounded(self.expr)
        raise ReturnSignal(deref(outcome) if outcome is not FAIL else FAIL)


class IconFailStmt(IconIterator):
    """``fail`` — signal procedure failure."""

    __slots__ = ()

    def iterate(self) -> Iterator[Any]:
        raise FailSignal()
        yield  # pragma: no cover - makes this a generator function


class IconBreak(IconIterator):
    """``break [e]`` — signal loop termination, optionally with outcome."""

    __slots__ = ("expr",)

    def __init__(self, expr: Any | None = None) -> None:
        super().__init__()
        self.expr = as_iterator(expr) if expr is not None else None

    def iterate(self) -> Iterator[Any]:
        raise BreakSignal(self.expr)
        yield  # pragma: no cover - makes this a generator function


class IconNext(IconIterator):
    """``next`` — signal continuation of the enclosing loop."""

    __slots__ = ()

    def iterate(self) -> Iterator[Any]:
        raise NextSignal()
        yield  # pragma: no cover - makes this a generator function
