"""Process-backed pipe workers — crash isolation for ``|>e``.

The paper's pipes are generator proxies on *threads*: cheap, but one hard
fault (a native crash, an OOM kill, ``os._exit``, a runaway C extension)
takes the whole interpreter down, and CPU-bound stages serialize on the
GIL.  This module adds a second execution tier, selected with
``backend="process"`` on :class:`~repro.coexpr.pipe.Pipe` (and threaded
through ``stage``/``pipeline``/``DataParallel``/``supervise``): the
worker body runs in a ``multiprocessing`` child that speaks the existing
envelope protocol — batched data slices, error, close (the
``WIRE_*`` vocabulary of :mod:`repro.coexpr.channel`) — over an IPC
connection.  A parent-side **pump thread** forwards envelopes into the
pipe's ordinary :class:`~repro.coexpr.channel.Channel`, so consumers,
batching, supervision, and monitoring all work unchanged.

Three behaviours distinguish the tier:

* **Heartbeat watchdog.**  A daemon thread in the child emits a beat
  every ``heartbeat_interval`` seconds; the pump doubles as the monitor.
  Missed beats past ``heartbeat_timeout``, an EOF on the connection, or
  child death (exit-code sentinel) without a close envelope surface a
  :class:`~repro.errors.PipeWorkerLost` error envelope to the consumer
  instead of a hang.  Buffered data already in the OS pipe is drained
  *before* the loss is reported — data-before-error, as in-process.
* **Worker-lost is retryable.**  Under
  :func:`~repro.coexpr.supervision.supervise` a lost worker consumes a
  retry like any producer crash: the process is respawned and the stream
  replayed/resumed per the restart mode, honoring the backoff policy —
  the snapshot/restart semantics of ``^c`` applied to a child process.
* **Graceful degradation.**  When the platform cannot ship the body (an
  unpicklable stage under a spawn context, a channel-fed stage whose
  upstream lives in the parent, a failed fork), the pipe falls back to
  the thread backend and emits a ``DEGRADED`` monitor event rather than
  erroring — same results, weaker isolation.

Child processes are registered with the owning
:class:`~repro.coexpr.scheduler.PipeScheduler`, so ``leaked()`` and
``shutdown()`` cover them: no orphaned children after tests.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from typing import Any, Callable

from ..errors import ChannelClosedError, PipeDeadlineExceeded, PipeWorkerLost
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from .deadline import Deadline
from .wire import (
    WIRE_BEAT,
    WIRE_CLOSE,
    WIRE_DATA,
    WIRE_ERROR,
    decode_error,
    encode_error,
)

#: Exit code used by fault injection (``FaultPlan.kill_stage``) so tests
#: can tell a deliberate chaos kill from an accidental one.
KILLED_EXIT = 173

#: Default seconds between child liveness beats.
DEFAULT_HEARTBEAT_INTERVAL = 0.1

#: With ``heartbeat_timeout=None`` the deadline is this many intervals.
_TIMEOUT_INTERVALS = 10.0

#: How often the pump re-checks cancellation while idle on the connection.
_POLL_SLICE = 0.05

#: Grace given to a terminated child before escalating to SIGKILL —
#: SIGTERM cannot reap a SIGSTOP-ed (hung) child, SIGKILL always can.
_TERMINATE_GRACE = 1.0


def default_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context process pipes use by default.

    Prefers ``fork`` where available: a forked child inherits the body
    closure and its environment snapshot directly, so arbitrary stage
    bodies work without being picklable (the same reason snapshot-based
    restart is free — the creation-time environment *is* the fork image).
    Platforms without fork get the platform default (spawn), where the
    picklability preflight below governs degradation.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def body_portability_reason(pipe: Any) -> str | None:
    """Why *pipe*'s body cannot leave this process at all (None = it can).

    The boundary-independent half of the degradation rules, shared by the
    process tier (here) and the network tier (:mod:`repro.net.client`):

    * a body that already started in the parent cannot be snapshotted
      mid-iteration — another process would silently replay from the top;
    * an environment (or declared upstream) referencing parent-side
      concurrency state — a :class:`Pipe`, :class:`Channel`, supervised
      pipe, M-var or future — cannot cross the boundary: the threads
      feeding those objects do not survive on the other side, so the
      body would block forever on a queue nobody fills;
    * a live iterator (or started co-expression) in the environment is
      parent-side *position* state: a copy would replay from the
      snapshot point and the parent's copy would never advance — shared
      consumption cannot span processes.
    """
    from .coexpression import CoExpression
    from .future import Future, MVar
    from .pipe import Pipe
    from .supervision import SupervisedPipe

    coexpr = pipe.coexpr
    if coexpr.started:
        return "co-expression already started in the parent"
    parent_bound = (Pipe, SupervisedPipe, Future, MVar)
    upstream = getattr(pipe, "upstream", None)
    if upstream is not None and isinstance(upstream, parent_bound):
        return "stage is fed by an in-parent pipe"
    from .channel import Channel

    for value in coexpr._env:
        if isinstance(value, parent_bound + (Channel,)):
            return f"environment references in-parent {type(value).__name__}"
        if isinstance(value, CoExpression):
            if value.started:
                return "environment references a started co-expression"
        elif hasattr(value, "__next__"):
            return "environment references a live iterator"
    return None


def spawn_unsafe_reason(pipe: Any, ctx: multiprocessing.context.BaseContext) -> str | None:
    """Why *pipe*'s body cannot run in a child of *ctx* (None = it can).

    The shared portability rules (:func:`body_portability_reason`) plus
    the process-tier specific one: under a non-fork start method the
    ``(factory, env)`` payload must pickle, because that is how the
    child will receive it (a forked child inherits the closure directly).
    """
    reason = body_portability_reason(pipe)
    if reason is not None:
        return reason
    if ctx.get_start_method() != "fork":
        coexpr = pipe.coexpr
        try:
            pickle.dumps((coexpr._factory, coexpr._env))
        except Exception as error:  # noqa: BLE001 - any pickle failure degrades
            return f"body not picklable under {ctx.get_start_method()}: {error!r}"
    return None


# ---------------------------------------------------------------------------
# Child side.  Everything below _child_main runs in the worker process —
# excluded from parent-side coverage accounting.
# ---------------------------------------------------------------------------

def _child_main(
    conn: Any,
    factory: Callable[..., Any],
    env: tuple,
    name: str,
    batch: int,
    max_linger: float | None,
    heartbeat_interval: float,
    deadline_budget: float | None = None,
) -> None:  # pragma: no cover - runs in the child process
    """Run the worker body and stream wire envelopes to the parent.

    Mirrors ``Pipe._run_batched``: values coalesce into slices of up to
    *batch*, a crash flushes buffered data before the error envelope, and
    exhaustion flushes then closes.  A daemon thread beats every
    *heartbeat_interval* seconds and doubles as the linger flusher when
    *max_linger* is set.  A clean run (including a *reported* crash) ends
    with a close envelope and exit code 0 — only a death that skips the
    close is a lost worker.

    *deadline_budget* is the parent pipe's remaining budget in seconds
    (monotonic clocks do not cross a fork — see
    :mod:`repro.coexpr.deadline`), re-anchored here against the child's
    own clock.  Expiry is a reported crash: flush, error envelope
    (:class:`~repro.errors.PipeDeadlineExceeded`), close, exit 0.
    """
    from ..runtime.failure import FAIL
    from .coexpression import CoExpression

    send_lock = threading.Lock()
    buffer: list = []
    buf_oldest = [0.0]
    stop = threading.Event()

    def send(msg: tuple) -> None:
        with send_lock:
            conn.send(msg)

    def flush_locked() -> None:
        # Caller holds send_lock; ships and clears the coalesced buffer.
        if buffer:
            conn.send((WIRE_DATA, list(buffer)))
            buffer.clear()

    def beat() -> None:
        wait = heartbeat_interval
        if max_linger is not None:
            wait = min(wait, max_linger)
        while not stop.wait(wait):
            try:
                with send_lock:
                    if (
                        max_linger is not None
                        and buffer
                        and time.monotonic() - buf_oldest[0] >= max_linger
                    ):
                        flush_locked()
                    conn.send((WIRE_BEAT, time.monotonic()))
            except (OSError, ValueError, BrokenPipeError):
                return  # parent is gone; nothing left to report to

    threading.Thread(target=beat, daemon=True, name="repro-proc-beat").start()
    coexpr = CoExpression(factory, lambda: env, name=name)
    deadline = None if deadline_budget is None else Deadline(deadline_budget)
    try:
        try:
            while True:
                if deadline is not None and deadline.expired():
                    raise PipeDeadlineExceeded(
                        f"pipe {name!r}: deadline exceeded (producer)",
                        where="producer",
                    )
                value = coexpr.activate()
                if value is FAIL:
                    break
                with send_lock:
                    if not buffer:
                        buf_oldest[0] = time.monotonic()
                    buffer.append(value)
                    if len(buffer) >= batch:
                        flush_locked()
            with send_lock:
                flush_locked()  # flush-on-exhaustion: no result is stranded
        except BaseException as error:  # noqa: BLE001 - forwarded to the parent
            try:
                with send_lock:
                    flush_locked()  # data first, then the error
            except Exception:  # noqa: BLE001 - e.g. the value itself won't pickle
                pass
            try:
                send((WIRE_ERROR, encode_error(error)))
            except Exception:  # noqa: BLE001 - parent already gone
                pass
        try:
            send((WIRE_CLOSE,))
        except Exception:  # noqa: BLE001 - parent already gone
            pass
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------

class ProcessWorker:
    """One child process plus the pump/watchdog thread that drains it.

    Created by :func:`start_process_worker`; owns the IPC connection, the
    ``multiprocessing.Process``, and the loss-detection state.  The pump
    body (:meth:`pump`) runs on a scheduler thread, so it is joinable and
    leak-checked exactly like a thread-backend worker.
    """

    __slots__ = (
        "pipe",
        "scheduler",
        "process",
        "conn",
        "heartbeat_timeout",
        "handle",
        "lost",
    )

    def __init__(self, pipe: Any, scheduler: Any, ctx: Any) -> None:
        interval = pipe.heartbeat_interval
        timeout = pipe.heartbeat_timeout
        if timeout is None:
            timeout = max(_TIMEOUT_INTERVALS * interval, 1.0)
        self.pipe = pipe
        self.scheduler = scheduler
        self.heartbeat_timeout = timeout
        self.handle = None
        #: The loss reason once the watchdog fired (None while healthy).
        self.lost: PipeWorkerLost | None = None
        coexpr = pipe.coexpr
        self.conn, child_conn = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=_child_main,
            args=(
                child_conn,
                coexpr._factory,
                coexpr._env,
                coexpr.name,
                max(pipe.batch, 1),
                pipe.max_linger,
                interval,
                None if pipe.deadline is None else pipe.deadline.remaining(),
            ),
            name=f"repro-proc-{coexpr.name}",
            daemon=True,
        )

    # -- watchdog / pump -------------------------------------------------------

    def _emit(self, kind: str, value: Any = None) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pipe:{self.pipe.coexpr.name}", 0, value))

    def _mark_lost(self, reason: str) -> None:
        # An EOF can race the child's actual exit: give it a beat so the
        # exit code is collectable (a still-running child — e.g. a missed
        # heartbeat — just reports None).
        self.process.join(0.2)
        exitcode = self.process.exitcode
        self.lost = PipeWorkerLost(
            f"pipe {self.pipe.coexpr.name!r}: process worker lost ({reason})",
            exitcode=exitcode,
        )
        self._emit(
            EventKind.WORKER_LOST, {"reason": reason, "exitcode": exitcode}
        )
        self.pipe._errored = True
        try:
            self.pipe.out.put_error(self.lost)
        except ChannelClosedError:
            pass  # consumer cancelled while the child was dying

    def pump(self) -> None:
        """Forward wire envelopes into the pipe's channel; watch liveness.

        One loop is both transport and monitor: every received envelope
        (beat or data) refreshes the heartbeat deadline; an expired
        deadline, an EOF, or a dead child without a close envelope is a
        lost worker.  Pending OS-pipe data is drained before loss is
        declared, preserving data-before-error ordering end to end.
        """
        pipe = self.pipe
        out = pipe.out
        conn = self.conn
        deadline = time.monotonic() + self.heartbeat_timeout
        closed = False
        try:
            while not closed:
                if pipe._cancelled:
                    return
                try:
                    ready = conn.poll(_POLL_SLICE)
                except (OSError, ValueError):
                    ready = False  # connection torn down under us
                if ready:
                    try:
                        kind, *payload = conn.recv()
                    except (EOFError, OSError):
                        self._mark_lost("connection closed before end of stream")
                        return
                    if kind == WIRE_ERROR:
                        pipe._errored = True
                        closed = out.feed_wire(kind, decode_error(payload[0]))
                    else:
                        closed = out.feed_wire(
                            kind, payload[0] if payload else None
                        )
                    deadline = time.monotonic() + self.heartbeat_timeout
                    continue
                if not self.process.is_alive():
                    # The child may have exited cleanly with envelopes
                    # still buffered in the OS pipe: drain before judging.
                    closed = self._drain()
                    if not closed:
                        self._mark_lost(
                            f"child died, exit code {self.process.exitcode}"
                        )
                    return
                if time.monotonic() >= deadline:
                    self._mark_lost(
                        f"no heartbeat within {self.heartbeat_timeout:.2f}s"
                    )
                    return
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        finally:
            out.close()
            self._reap()
            if pipe._cancelled or pipe._errored:
                pipe._cancel_upstream()

    def _drain(self) -> bool:
        """Deliver every envelope still buffered after child death;
        True if a close envelope completed the stream."""
        out = self.pipe.out
        while True:
            try:
                if not self.conn.poll(0):
                    return False
                kind, *payload = self.conn.recv()
            except (EOFError, OSError):
                return False
            if kind == WIRE_ERROR:
                self.pipe._errored = True
                if out.feed_wire(kind, decode_error(payload[0])):
                    return True
            elif out.feed_wire(kind, payload[0] if payload else None):
                return True

    # -- teardown --------------------------------------------------------------

    def terminate(self) -> None:
        """Ask the child to die (idempotent; the pump reaps it)."""
        if self.process.is_alive():
            self.process.terminate()

    def _reap(self) -> None:
        """Ensure the child is dead and unregistered (SIGTERM → SIGKILL)."""
        process = self.process
        if process.is_alive():
            process.terminate()
            process.join(_TERMINATE_GRACE)
        if process.is_alive():
            # SIGTERM cannot reap a stopped/hung child; SIGKILL always does.
            process.kill()
            process.join(_TERMINATE_GRACE)
        try:
            self.conn.close()
        except OSError:
            pass
        self.scheduler.untrack_process(process)

    def join(self, timeout: float | None = None) -> bool:
        if self.handle is not None:
            return self.handle.join(timeout)
        return True

    def is_alive(self) -> bool:
        return self.handle is not None and self.handle.is_alive()


def start_process_worker(pipe: Any, scheduler: Any) -> ProcessWorker | None:
    """Spawn *pipe*'s body in a child process; None means *degrade*.

    Returns a running :class:`ProcessWorker` (child started, pump
    submitted, process tracked by *scheduler*) — or None after emitting a
    ``DEGRADED`` monitor event, in which case the caller falls back to
    the thread backend.  Scheduler shutdown is **not** degradation: a
    submit racing shutdown propagates
    :class:`~repro.errors.SchedulerShutdownError`, exactly as the thread
    backend does.
    """
    ctx = pipe.mp_context or default_context()
    reason = spawn_unsafe_reason(pipe, ctx)
    if reason is None:
        worker = ProcessWorker(pipe, scheduler, ctx)
        scheduler.track_process(worker.process)  # raises after shutdown
        try:
            worker.process.start()
        except OSError as error:
            scheduler.untrack_process(worker.process)
            reason = f"process spawn failed: {error!r}"
        else:
            try:
                worker.handle = scheduler.submit(
                    worker.pump, name=f"pump-{pipe.coexpr.name}"
                )
            except BaseException:
                worker._reap()
                raise
            if lifecycle_enabled():
                emit_lifecycle(
                    Event(
                        EventKind.SPAWN,
                        f"pipe:{pipe.coexpr.name}",
                        0,
                        {"pid": worker.process.pid},
                    )
                )
                if pipe.deadline is not None:
                    emit_lifecycle(
                        Event(
                            EventKind.DEADLINE_PROPAGATED,
                            f"pipe:{pipe.coexpr.name}",
                            0,
                            {
                                "remaining": pipe.deadline.remaining(),
                                "transport": "process",
                            },
                        )
                    )
            return worker
    pipe._degraded = reason
    if lifecycle_enabled():
        emit_lifecycle(
            Event(EventKind.DEGRADED, f"pipe:{pipe.coexpr.name}", 0, reason)
        )
    return None
