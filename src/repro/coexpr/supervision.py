"""Supervised pipes — restart policies, deadlines, and fault injection.

The paper's pipes (III.B) are long-lived worker threads; this module is
the lifecycle discipline around them, in the spirit of hProlog's
high-level multi-threading (explicit management built over message
queues) and of snapshot-based restartable computation: the calculus
already has the restart primitive — ``^c`` (refresh) rebuilds a
co-expression from its original environment snapshot — so supervision is
"retry via refresh" with a budget and a backoff.

Three pieces:

* :class:`BackoffPolicy` — exponential backoff with an injectable
  ``sleep`` (tests pass a fake and run deterministically).
* :class:`SupervisedPipe` / :func:`supervise` — wraps an expression the
  way ``|>`` does, but a producer crash consumes a retry instead of
  poisoning the channel: the co-expression is refreshed and re-run.  Two
  restart modes:

  - ``"replay"`` (self-contained sources): the refreshed body reproduces
    the stream from the beginning, so already-delivered results are
    skipped — exactly-once delivery for deterministic bodies.
  - ``"resume"`` (channel-fed stages): the body iterates a shared
    upstream whose consumed items are gone; the refreshed body simply
    continues from the upstream's current position.

* :class:`FaultPlan` — deterministic fault injection for tests: fail
  stage *N* on attempt *K* (at body start or after *M* items), delay a
  stage's puts by a fixed amount, or — for process-backed workers —
  *kill* the worker outright (``kill_stage``: ``os._exit``, the chaos
  test for the heartbeat watchdog).  Attempt counters are exposed, and
  ``state_dir=`` moves them into files so they survive process
  boundaries: a respawned child sees the true attempt number even
  though it shares no memory with its predecessors.

A lost process worker (:class:`~repro.errors.PipeWorkerLost`, from the
heartbeat watchdog of :mod:`repro.coexpr.proc`) is a retryable fault
like any producer crash: restart respawns the child and replays or
resumes from the supervision resume point, honoring the backoff.

Every supervision decision (start, retry, cancel, timeout, exhaust) is
emitted on the monitor lifecycle bus, so a
:class:`~repro.monitor.Tracer` can observe exactly what the supervisor
did and when.
"""

from __future__ import annotations

import hashlib
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import (
    InjectedDisconnect,
    PipeError,
    PipeTimeoutError,
    RetryExhaustedError,
)
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator
from .coexpression import CoExpression, coexpr_of
from .dataparallel import apply_mapped, iter_source
from .deadline import deadline_from
from .pipe import Pipe
from .scheduler import PipeScheduler

_UNSET = object()


# ---------------------------------------------------------------------------
# Backoff
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff: ``initial * multiplier**(retry-1)``, capped.

    Purely arithmetic — the *sleep* (and any clock) is injected where the
    policy is used, so tests can run restart schedules instantly while
    asserting the exact delays that would have been slept.

    ``jitter=True`` turns on **full jitter**: each delay is drawn
    uniformly from ``[0, schedule]`` instead of being the schedule
    itself.  The point is the cluster tier: when a replica dies it
    orphans *every* client it was serving at once, and a deterministic
    schedule marches all of them back onto the next replica in lockstep
    — a synchronized reconnect storm at exactly the backoff instants.
    Jitter decorrelates the herd.  The default stays deterministic so
    test schedules (and every existing policy) are byte-for-byte
    unchanged.
    """

    initial: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: bool = False

    def __post_init__(self) -> None:
        if self.initial < 0 or self.max_delay < 0 or self.multiplier < 0:
            raise ValueError("backoff parameters must be non-negative")

    def delay(
        self, retry: int, rand: Callable[[], float] | None = None
    ) -> float:
        """Delay before the *retry*-th restart (1-based).

        *rand* (a ``() -> [0, 1)`` callable) injects the jitter draw for
        deterministic tests; ignored without ``jitter``.
        """
        if retry < 1:
            raise ValueError("retry is 1-based")
        base = min(self.initial * (self.multiplier ** (retry - 1)), self.max_delay)
        if not self.jitter:
            return base
        draw = rand() if rand is not None else random.random()
        return draw * base


#: Sleep-free policy for tests and "retry immediately" callers.
NO_BACKOFF = BackoffPolicy(initial=0.0, multiplier=1.0, max_delay=0.0)


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class _ProcessKill:
    """A rule action that hard-kills the *worker process* (``os._exit``).

    Only meaningful in a process-backed worker: the child dies without
    flushing, reporting, or running ``finally`` blocks — exactly the
    fault class the heartbeat watchdog exists to catch.  (In a thread
    worker this would take the whole interpreter down; don't.)
    """

    __slots__ = ("exit_code",)

    def __init__(self, exit_code: int) -> None:
        self.exit_code = exit_code


class _ServerKill:
    """A rule action that hard-kills an in-process generator server.

    The cluster tier's chaos primitive: when the rule fires the held
    :class:`~repro.net.server.GeneratorServer` kills every live session
    *and* stops accepting — clients see torn connections, redials are
    refused, and routing must fail over to another replica.  Unlike
    :class:`_ProcessKill` this does not raise or exit: the fault arrives
    at the client through the socket, exactly as a real dead server's
    would.
    """

    __slots__ = ("server",)

    def __init__(self, server: Any) -> None:
        self.server = server


class _MembershipChurn:
    """A rule action that changes a :class:`~repro.net.cluster.ServerPool`'s
    fleet at an exact stream position.

    The membership tier's chaos primitive: when the rule fires, *join*
    members enter the pool (minimal remap — only the keys they now own
    move) and *leave* addresses retire, all while the triggering stream
    keeps running.  Like :class:`_ServerKill` it does not raise: the
    churn is environmental, and the stream must survive it — that
    surviving exactly-once is precisely what the sustained-churn suite
    asserts.
    """

    __slots__ = ("pool", "join", "leave")

    def __init__(self, pool: Any, join: tuple, leave: tuple) -> None:
        self.pool = pool
        self.join = join
        self.leave = leave


class _FaultContext:
    """Per-run view of a plan: one body execution of one stage."""

    __slots__ = ("_plan", "_stage", "attempt", "_items", "_fired")

    def __init__(self, plan: "FaultPlan", stage: Any, attempt: int) -> None:
        self._plan = plan
        self._stage = stage
        self.attempt = attempt
        self._items = 0
        #: Rule indices already fired this run: a non-raising action
        #: (kill_server) must not re-fire on every later item once its
        #: after_items bar is passed.
        self._fired: set = set()
        self._check(at_start=True)

    def _fire(self, action: Any, detail: str) -> None:
        if isinstance(action, _ProcessKill):  # pragma: no cover - child side
            os._exit(action.exit_code)
        if isinstance(action, _ServerKill):
            action.server.kill_sessions()
            action.server.shutdown(wait=False)
            return
        if isinstance(action, _MembershipChurn):
            for member in action.join:
                action.pool.add(member, source="chaos")
            for address in action.leave:
                action.pool.remove(address, source="chaos")
            return
        raise action(detail)

    def _check(self, at_start: bool) -> None:
        for index, rule in enumerate(self._plan._rules_for(self._stage)):
            on_attempts, after_items, action = rule
            if self.attempt not in on_attempts or index in self._fired:
                continue
            if at_start and after_items == 0:
                self._fired.add(index)
                self._fire(
                    action,
                    f"injected fault: stage {self._stage!r} attempt {self.attempt}",
                )
            if not at_start and 0 < after_items <= self._items:
                self._fired.add(index)
                self._fire(
                    action,
                    f"injected fault: stage {self._stage!r} attempt "
                    f"{self.attempt} after {self._items} items",
                )

    def on_item(self, item: Any) -> None:
        """Call before yielding each result: applies delays and
        after-items failures."""
        delay = self._plan._delay_for(self._stage)
        if delay:
            self._plan._sleep(delay)
        self._items += 1
        self._check(at_start=False)


class FaultPlan:
    """A deterministic schedule of injected faults, keyed by stage.

    Stages are identified by whatever key the caller uses (an int index
    from :func:`supervised_pipeline`, or any hashable for hand-built
    stages).  The plan is thread-safe; attempt counters are per-stage and
    increment each time a stage body (re)starts.

    ``state_dir`` (a directory path) moves the attempt counters into
    files, one byte appended per body start — the cross-process mode.  A
    process-backed worker runs its body in a child that shares no memory
    with the parent (or with its own respawned successors), so an
    in-memory counter would restart from zero on every respawn and an
    "attempt 1 only" fault would fire forever; the file counter gives
    every incarnation the true attempt number.
    """

    def __init__(
        self,
        sleep: Callable[[float], None] = time.sleep,
        state_dir: str | None = None,
    ) -> None:
        self._sleep = sleep
        self._state_dir = os.fspath(state_dir) if state_dir is not None else None
        self._lock = threading.Lock()
        self._attempts: dict[Any, int] = {}
        self._rules: dict[Any, list] = {}
        self._delays: dict[Any, float] = {}

    # -- authoring -----------------------------------------------------------

    def fail_stage(
        self,
        stage: Any,
        on_attempts: tuple = (1,),
        error: Callable[[str], BaseException] = RuntimeError,
        after_items: int = 0,
    ) -> "FaultPlan":
        """Make *stage* raise on the given attempts: immediately at body
        start (``after_items=0``) or after producing that many items."""
        with self._lock:
            self._rules.setdefault(stage, []).append(
                (tuple(on_attempts), after_items, error)
            )
        return self

    def delay_stage(self, stage: Any, delay: float) -> "FaultPlan":
        """Delay each of *stage*'s puts by *delay* seconds (via the
        plan's injectable sleep)."""
        with self._lock:
            self._delays[stage] = delay
        return self

    def kill_stage(
        self,
        stage: Any,
        on_attempts: tuple = (1,),
        after_items: int = 0,
        exit_code: int | None = None,
    ) -> "FaultPlan":
        """Make *stage* hard-kill its worker **process** (``os._exit``)
        on the given attempts — no flush, no error envelope, no
        ``finally``.  The chaos rule for the heartbeat watchdog; only
        use on ``backend="process"`` workers (in a thread worker it
        would exit the host interpreter).  Pair with ``state_dir`` so a
        respawned child does not re-match the attempt and die again.
        """
        if exit_code is None:
            from .proc import KILLED_EXIT

            exit_code = KILLED_EXIT
        with self._lock:
            self._rules.setdefault(stage, []).append(
                (tuple(on_attempts), after_items, _ProcessKill(exit_code))
            )
        return self

    def drop_connection(
        self,
        stage: Any,
        on_attempts: tuple = (1,),
        after_items: int = 0,
    ) -> "FaultPlan":
        """Make *stage*'s remote **connection** drop on the given
        attempts (session numbers, counted per route key).

        Fires in the client pump: the socket is torn down and the
        consumer sees an ordinary
        :class:`~repro.errors.PipeConnectionLost` with reason
        ``"injected connection drop"`` — after delivering *after_items*
        results (0 = at connect time, before any data).  On a
        :class:`~repro.net.cluster.ServerPool` the plan is armed via
        ``fault_plan=`` and stages are route keys (pipe names), so a
        chaos test can drop exactly the first session of exactly one
        stream and watch failover route the replay elsewhere.
        """
        with self._lock:
            self._rules.setdefault(stage, []).append(
                (tuple(on_attempts), after_items, InjectedDisconnect)
            )
        return self

    def kill_server(
        self,
        stage: Any,
        server: Any,
        on_attempts: tuple = (1,),
        after_items: int = 0,
    ) -> "FaultPlan":
        """Make *stage* kill the in-process generator *server* on the
        given attempts: every live session is killed and the listener
        closed, so clients see torn connections and redials are refused.

        The deterministic stand-in for SIGKILLing a replica: the client
        whose stream matches *stage* (a route key on a
        :class:`~repro.net.cluster.ServerPool`) pulls the trigger at an
        exact point — *after_items* delivered results — and the fault
        then reaches every client of that replica through the socket,
        like a real crash.
        """
        with self._lock:
            self._rules.setdefault(stage, []).append(
                (tuple(on_attempts), after_items, _ServerKill(server))
            )
        return self

    def churn_membership(
        self,
        stage: Any,
        pool: Any,
        join: tuple = (),
        leave: tuple = (),
        on_attempts: tuple = (1,),
        after_items: int = 0,
    ) -> "FaultPlan":
        """Make *stage* churn *pool*'s fleet on the given attempts:
        *join* members (any member spelling, including weighted
        triples) enter and *leave* addresses retire after the stage has
        delivered *after_items* results.

        The deterministic sustained-churn rule: chaos tests pin
        replicas joining and leaving at exact stream positions —
        mid-replay, mid-batch — and assert the sequence stays
        exactly-once while the ring remaps minimally under the
        running stream.  Fires once per matching attempt, from the
        client pump, without disturbing the triggering stream.
        """
        with self._lock:
            self._rules.setdefault(stage, []).append(
                (
                    tuple(on_attempts),
                    after_items,
                    _MembershipChurn(pool, tuple(join), tuple(leave)),
                )
            )
        return self

    # -- runtime hooks -------------------------------------------------------

    def _counter_path(self, stage: Any) -> str:
        digest = hashlib.md5(repr(stage).encode()).hexdigest()[:16]
        return os.path.join(self._state_dir, f"attempts-{digest}")

    def enter(self, stage: Any) -> _FaultContext:
        """Record a body (re)start for *stage*; may raise an injected
        fault before anything is consumed."""
        if self._state_dir is not None:
            # One O_APPEND byte per start: atomic enough for the
            # sequential respawns supervision performs, and visible to
            # every child incarnation.
            with open(self._counter_path(stage), "ab") as counter:
                counter.write(b"x")
                counter.flush()
            attempt = os.path.getsize(self._counter_path(stage))
            with self._lock:
                self._attempts[stage] = attempt
        else:
            with self._lock:
                attempt = self._attempts.get(stage, 0) + 1
                self._attempts[stage] = attempt
        return _FaultContext(self, stage, attempt)

    def attempts(self, stage: Any) -> int:
        """How many times *stage*'s body has started."""
        if self._state_dir is not None:
            try:
                return os.path.getsize(self._counter_path(stage))
            except OSError:
                return 0
        with self._lock:
            return self._attempts.get(stage, 0)

    def _rules_for(self, stage: Any) -> list:
        with self._lock:
            return list(self._rules.get(stage, ()))

    def _delay_for(self, stage: Any) -> float:
        with self._lock:
            return self._delays.get(stage, 0.0)


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------

class SupervisedPipe(IconIterator):
    """A pipe with a restart budget.

    Takes behave like :meth:`Pipe.take` until the producer raises; then,
    while retries remain, the co-expression is refreshed (``^c``) and run
    on a fresh pipe after the policy's backoff, instead of the error
    reaching the consumer.  When the budget is exhausted the take raises
    :class:`RetryExhaustedError` chained to the last producer error.

    Timeout expiry (:class:`PipeTimeoutError`) is *not* retried — a slow
    producer is not a crashed one; the caller decides whether to cancel.
    The same rule covers an end-to-end ``deadline``
    (:class:`~repro.errors.PipeDeadlineExceeded` subclasses it): there
    is no budget left to retry *in*, and because the one
    :class:`~repro.coexpr.deadline.Deadline` object is shared across
    restarts, a refreshed pipe cannot reset the clock either.
    """

    __slots__ = (
        "name",
        "max_retries",
        "backoff",
        "capacity",
        "take_timeout",
        "batch",
        "max_linger",
        "backend",
        "heartbeat_interval",
        "heartbeat_timeout",
        "mp_context",
        "remote_address",
        "deadline",
        "restart",
        "upstream",
        "_scheduler",
        "_sleep",
        "_cancel_event",
        "_coexpr",
        "_pipe",
        "_failures",
        "_delivered",
        "_skip",
        "_lock",
        "_cancelled",
    )

    def __init__(
        self,
        expr: Any,
        *,
        max_retries: int = 3,
        backoff: BackoffPolicy | None = None,
        capacity: int = 0,
        scheduler: PipeScheduler | None = None,
        take_timeout: float | None = None,
        batch: int = 1,
        max_linger: float | None = None,
        backend: str = "thread",
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        mp_context: Any = None,
        remote_address: Any = None,
        deadline: Any = None,
        sleep: Callable[[float], None] = time.sleep,
        restart: str = "replay",
        upstream: Any = None,
        name: str | None = None,
    ) -> None:
        if restart not in ("replay", "resume"):
            raise ValueError("restart must be 'replay' or 'resume'")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        super().__init__()
        self._coexpr = coexpr_of(expr)
        self.name = name or self._coexpr.name
        self.max_retries = max_retries
        self.backoff = backoff or BackoffPolicy()
        self.capacity = capacity
        self.take_timeout = take_timeout
        self.batch = batch
        self.max_linger = max_linger
        #: Worker tier for every (re)spawned pipe — "process" gives
        #: crash isolation: a lost child is a retryable fault, and the
        #: restart respawns a fresh process (see repro.coexpr.proc);
        #: "remote" gives the same contract over a socket: a lost
        #: connection (PipeConnectionLost) consumes a retry and the
        #: restart reconnects to remote_address (see repro.net).
        self.backend = backend
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.mp_context = mp_context
        if backend == "remote" and remote_address is not None:
            # Normalize ONCE (list -> ServerPool) so every restart
            # shares the same pool object: suspicion and failover
            # memory must survive the refresh, or a reconnect would
            # happily re-dial the replica that just died.
            from ..net.cluster import normalize_remote_address

            remote_address = normalize_remote_address(remote_address)
        self.remote_address = remote_address
        #: One normalized Deadline shared by every (re)spawned pipe:
        #: restarts burn the same budget, never a fresh one.
        self.deadline = deadline_from(deadline)
        self.restart = restart
        #: Optional upstream pipe to cancel when supervision gives up
        #: (exhaust) or is cancelled — keeps the producer chain leak-free.
        self.upstream = upstream
        self._scheduler = scheduler
        self._sleep = sleep
        #: Set by cancel(): makes a backoff sleep in progress return
        #: immediately instead of serving out its full delay.
        self._cancel_event = threading.Event()
        self._pipe = self._make_pipe()
        self._failures = 0       # producer crashes seen so far
        self._delivered = 0      # results handed to the consumer
        self._skip = 0           # replayed results to discard after a restart
        self._lock = threading.RLock()
        self._cancelled = False

    def _make_pipe(self) -> Pipe:
        return Pipe(
            self._coexpr,
            capacity=self.capacity,
            scheduler=self._scheduler,
            take_timeout=self.take_timeout,
            batch=self.batch,
            max_linger=self.max_linger,
            backend=self.backend,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            mp_context=self.mp_context,
            remote_address=self.remote_address,
            deadline=self.deadline,
        )

    # -- lifecycle events -----------------------------------------------------

    def _emit(self, kind: str, value: Any = None) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"supervise:{self.name}", 0, value))

    # -- consumer -------------------------------------------------------------

    def take(self, timeout: Any = _UNSET) -> Any:
        """The next result, transparently restarting a crashed producer."""
        if timeout is _UNSET:
            timeout = self.take_timeout
        with self._lock:
            while True:
                if self._cancelled:
                    return FAIL
                try:
                    value = self._pipe.take(timeout)
                except PipeTimeoutError:
                    raise
                except Exception as error:  # noqa: BLE001 - producer crash
                    self._on_crash(error)
                    continue
                if value is FAIL:
                    return FAIL
                if self._skip > 0:
                    self._skip -= 1
                    continue
                self._delivered += 1
                return value

    def _on_crash(self, error: BaseException) -> None:
        self._failures += 1
        if self._failures > self.max_retries:
            self._emit(EventKind.EXHAUST, self._failures)
            raise RetryExhaustedError(
                f"supervise {self.name!r}: producer failed "
                f"{self._failures} times (max_retries={self.max_retries})",
                attempts=self._failures,
            ) from error
        delay = self.backoff.delay(self._failures)
        self._emit(
            EventKind.RETRY,
            {"attempt": self._failures, "delay": delay, "error": repr(error)},
        )
        if delay:
            if self._sleep is time.sleep:
                # The default sleep waits on the cancel event instead:
                # cancel(join=True) mid-backoff returns immediately
                # rather than serving out the delay.  An *injected*
                # sleep is still called directly — tests rely on seeing
                # the exact delays the policy computed.
                self._cancel_event.wait(delay)
            else:
                self._sleep(delay)
        self._pipe.cancel()
        self._coexpr = self._coexpr.refresh()
        self._pipe = self._make_pipe()
        if self._cancelled:
            self._pipe.cancel()  # raced with a concurrent cancel(): stay down
        if self.restart == "replay":
            self._skip = self._delivered

    def next_value(self) -> Any:
        return self.take()

    def iterate(self) -> Iterator[Any]:
        while True:
            value = self.take()
            if value is FAIL:
                return
            yield value

    # -- lifecycle ------------------------------------------------------------

    def cancel(self, join: bool = False, timeout: float | None = None) -> bool:
        """Cancel the current pipe (and the upstream chain, when given).

        Deliberately lock-free: a consumer blocked inside :meth:`take`
        holds the lock, and cancel is how another thread unblocks it
        (closing the channel makes the take return :data:`FAIL`).
        """
        self._cancelled = True
        self._cancel_event.set()  # interrupt a backoff sleep in progress
        done = self._pipe.cancel(join=join, timeout=timeout)
        upstream = self.upstream
        if upstream is not None:
            canceller = getattr(upstream, "cancel", None)
            if canceller is not None:
                canceller()
        return done

    @property
    def failures(self) -> int:
        """Producer crashes absorbed (or re-raised) so far."""
        return self._failures

    @property
    def delivered(self) -> int:
        """Results handed to the consumer so far."""
        return self._delivered

    # -- runtime protocol hooks ------------------------------------------------

    def icon_activate(self, transmit: Any = None) -> Any:
        if transmit is not None:
            raise PipeError("cannot transmit a value into a supervised pipe")
        return self.take()

    def icon_promote(self) -> Iterator[Any]:
        return self.iterate()

    def icon_type(self) -> str:
        return "supervised-pipe"

    def __repr__(self) -> str:
        return (
            f"SupervisedPipe({self.name}, failures={self._failures}/"
            f"{self.max_retries}, delivered={self._delivered})"
        )


def supervise(
    expr: Any,
    *,
    max_retries: int = 3,
    backoff: BackoffPolicy | None = None,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    take_timeout: float | None = None,
    batch: int = 1,
    max_linger: float | None = None,
    backend: str = "thread",
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    mp_context: Any = None,
    remote_address: Any = None,
    deadline: Any = None,
    sleep: Callable[[float], None] = time.sleep,
    restart: str = "replay",
    name: str | None = None,
) -> SupervisedPipe:
    """``|>`` with a restart budget: wrap *expr* in a supervised pipe.

    *expr* is anything :func:`~repro.coexpr.coexpr_of` accepts.  See
    :class:`SupervisedPipe` for the restart-mode semantics; the default
    ``"replay"`` suits self-contained deterministic sources.  With
    ``backend="process"`` the producer runs crash-isolated in a child
    process and a lost worker (:class:`~repro.errors.PipeWorkerLost`)
    consumes a retry like any other producer crash.  With
    ``backend="remote"`` the producer runs on the generator server at
    *remote_address* and a lost connection
    (:class:`~repro.errors.PipeConnectionLost`) consumes a retry the
    same way — the restart reconnects and, in ``"replay"`` mode, skips
    already-delivered results.
    """
    return SupervisedPipe(
        expr,
        max_retries=max_retries,
        backoff=backoff,
        capacity=capacity,
        scheduler=scheduler,
        take_timeout=take_timeout,
        batch=batch,
        max_linger=max_linger,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        mp_context=mp_context,
        remote_address=remote_address,
        deadline=deadline,
        sleep=sleep,
        restart=restart,
        name=name,
    )


# ---------------------------------------------------------------------------
# Supervised pipeline stages
# ---------------------------------------------------------------------------

def supervised_stage(
    fn: Callable[[Any], Any],
    upstream: Any,
    *,
    max_retries: int = 3,
    backoff: BackoffPolicy | None = None,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    take_timeout: float | None = None,
    batch: int = 1,
    max_linger: float | None = None,
    backend: str = "thread",
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    mp_context: Any = None,
    remote_address: Any = None,
    deadline: Any = None,
    sleep: Callable[[float], None] = time.sleep,
    fault_plan: FaultPlan | None = None,
    stage_key: Any = None,
    name: str | None = None,
) -> SupervisedPipe:
    """One pipeline stage whose crashes are retried in place.

    The stage body maps *fn* over a shared upstream; because channel
    items are consumed destructively, restarts use ``"resume"`` mode —
    the refreshed body picks up wherever the upstream is now.  An item
    the body had taken but not finished processing when it crashed is
    charged to that attempt (at-most-once per item); faults injected at
    body start (the :class:`FaultPlan` default) lose nothing.

    ``backend="process"`` is accepted but a channel-fed stage (a live
    upstream pipe in its environment) cannot cross a process boundary,
    so it degrades to the thread backend with a ``DEGRADED`` monitor
    event — the documented graceful-degradation rule.  Self-contained
    upstreams (an iterable snapshot) are *consumed in the parent* via
    the shared iterator, so they degrade too; true process stages come
    from :func:`supervise`/:class:`~repro.coexpr.dataparallel.DataParallel`
    over self-contained bodies.
    """
    if isinstance(upstream, (Pipe, SupervisedPipe)):
        shared: Any = upstream
        up_pipe: Any = upstream
    else:
        # Snapshot a single shared iterator so a refreshed body resumes
        # instead of replaying a restartable iterable from the top.
        shared = iter(iter_source(upstream))
        up_pipe = None

    stage_name = name or getattr(fn, "__name__", "stage")
    key = stage_key if stage_key is not None else stage_name

    def body(up: Any, plan: FaultPlan | None, stage_id: Any) -> Iterator[Any]:
        ctx = plan.enter(stage_id) if plan is not None else None
        for value in iter_source(up):
            for mapped in apply_mapped(fn, value):
                if ctx is not None:
                    ctx.on_item(mapped)
                yield mapped

    coexpr = CoExpression(
        body, lambda: (shared, fault_plan, key), name=stage_name
    )
    return SupervisedPipe(
        coexpr,
        max_retries=max_retries,
        backoff=backoff,
        capacity=capacity,
        scheduler=scheduler,
        take_timeout=take_timeout,
        batch=batch,
        max_linger=max_linger,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        mp_context=mp_context,
        remote_address=remote_address,
        deadline=deadline,
        sleep=sleep,
        restart="resume",
        upstream=up_pipe,
        name=stage_name,
    )


def supervised_pipeline(
    source: Any,
    *stages: Callable[[Any], Any],
    max_retries: int = 3,
    backoff: BackoffPolicy | None = None,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    take_timeout: float | None = None,
    batch: int = 1,
    max_linger: float | None = None,
    backend: str = "thread",
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    mp_context: Any = None,
    remote_address: Any = None,
    deadline: Any = None,
    sleep: Callable[[float], None] = time.sleep,
    fault_plan: FaultPlan | None = None,
) -> Any:
    """:func:`~repro.coexpr.patterns.pipeline` with supervised stages.

    Each stage gets its own restart budget; stage keys for the fault
    plan are the 1-based stage indices (0 is the unsupervised source).
    Cancellation propagates the whole chain: cancelling the returned
    pipe tears every stage and the source down.  ``backend="process"``
    crash-isolates the source; channel-fed stages degrade to threads
    per the rules in :mod:`repro.coexpr.proc`.

    ``backend="remote"`` supervises the chain as **one** remote pipe
    over the whole-pipeline body (the shape
    :func:`~repro.coexpr.patterns.pipeline` ships to the server): a
    per-stage chain of supervisors cannot replay, because every stage
    above a reconnected one would have to be rebuilt too.  The single
    supervisor uses ``"replay"`` restarts — a lost connection
    reconnects, the server re-expands the pipeline, and
    already-delivered results are skipped, so the consumer sees the
    uninterrupted sequence.  (A per-stage *fault_plan* does not apply in
    this shape; inject faults in the stage functions or kill server
    sessions instead.)
    """
    from .patterns import _remote_pipeline_body, source_pipe

    # Normalize once: the source and every stage share ONE budget — the
    # deadline is end-to-end, not per stage.
    deadline = deadline_from(deadline)
    if backend == "remote" and stages:
        coexpr = CoExpression(
            _remote_pipeline_body,
            lambda: (source, tuple(stages)),
            name=f"pipeline[{len(stages)}]",
        )
        return SupervisedPipe(
            coexpr,
            max_retries=max_retries,
            backoff=backoff,
            capacity=capacity,
            scheduler=scheduler,
            take_timeout=take_timeout,
            batch=batch,
            max_linger=max_linger,
            backend=backend,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            mp_context=mp_context,
            remote_address=remote_address,
            deadline=deadline,
            sleep=sleep,
            restart="replay",
        )
    current: Any = source_pipe(
        source,
        capacity=capacity,
        scheduler=scheduler,
        batch=batch,
        max_linger=max_linger,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        mp_context=mp_context,
        remote_address=remote_address,
        deadline=deadline,
    )
    for index, fn in enumerate(stages, start=1):
        current = supervised_stage(
            fn,
            current,
            max_retries=max_retries,
            backoff=backoff,
            capacity=capacity,
            scheduler=scheduler,
            take_timeout=take_timeout,
            batch=batch,
            max_linger=max_linger,
            backend=backend,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            mp_context=mp_context,
            remote_address=remote_address,
            deadline=deadline,
            sleep=sleep,
            fault_plan=fault_plan,
            stage_key=index,
            name=f"stage-{index}:{getattr(fn, '__name__', 'fn')}",
        )
    return current
