"""Concurrency for generators — co-expressions, pipes, and map-reduce.

Implements the paper's calculus (Figure 1) over the goal-directed runtime:
co-expressions shadow their creation environment, pipes are generator
proxies running in separate threads behind blocking channels, futures are
singleton pipes, and :class:`DataParallel` builds map-reduce from chunks
of piped tasks (Figure 4).

Host-facing quickstart::

    from repro.coexpr import pipe, stage, pipeline

    import math
    squares = pipeline(range(10), lambda x: x * x, math.sqrt)
    assert list(squares) == [float(i) for i in range(10)]
"""

from .aio import AsyncChannel, AsyncPipe, event_loop
from .channel import CLOSED, Channel, RaiseEnvelope
from .coexpression import CoExpression, coexpr_of
from .deadline import Deadline, deadline_from
from .pipe import Pipe
from .future import Future, MVar
from .scheduler import (
    PipeScheduler,
    WorkerHandle,
    default_scheduler,
    set_default_scheduler,
    use_scheduler,
)
from .calculus import (
    activate,
    coexpr,
    first_class,
    future,
    pipe,
    promote,
    refresh,
    results,
)
from .dataparallel import DataParallel, apply_mapped, iter_source, map_reduce
from .patterns import fan_out, merge, pipeline, source_pipe, stage
from .supervision import (
    NO_BACKOFF,
    BackoffPolicy,
    FaultPlan,
    SupervisedPipe,
    supervise,
    supervised_pipeline,
    supervised_stage,
)

__all__ = [
    "CLOSED",
    "AsyncChannel",
    "AsyncPipe",
    "BackoffPolicy",
    "Channel",
    "CoExpression",
    "DataParallel",
    "Deadline",
    "FaultPlan",
    "Future",
    "MVar",
    "NO_BACKOFF",
    "Pipe",
    "PipeScheduler",
    "RaiseEnvelope",
    "SupervisedPipe",
    "WorkerHandle",
    "activate",
    "apply_mapped",
    "coexpr",
    "coexpr_of",
    "deadline_from",
    "default_scheduler",
    "event_loop",
    "fan_out",
    "first_class",
    "future",
    "iter_source",
    "map_reduce",
    "merge",
    "pipe",
    "pipeline",
    "promote",
    "refresh",
    "results",
    "set_default_scheduler",
    "source_pipe",
    "stage",
    "supervise",
    "supervised_pipeline",
    "supervised_stage",
    "use_scheduler",
]
