"""Pipes — multithreaded generator proxies (paper Section III.B).

    ``|>e → new Iterator() { next() { new Thread { run() {
        c=|<>e; while (!fail) { out.put(@c); }}}.start() }}``

A pipe owns a co-expression, runs it to exhaustion in a worker thread,
and streams each result through a blocking channel; stepping the pipe
(``@``) is a ``take``.  The surrounding expression therefore runs in
parallel with the piped expression — chains of pipes form parallel
pipelines.

Per the paper, the output queue ``out`` "is exposed as a public field to
permit further manipulation", and bounding its capacity throttles the
producer thread.

Robustness (the supervision layer, :mod:`repro.coexpr.supervision`)
builds on three hooks here:

* ``take(timeout=...)`` / a per-pipe ``take_timeout`` — deadline-correct
  blocking that raises :class:`~repro.errors.PipeTimeoutError`;
* ``cancel(join=True, timeout=...)`` — graceful-or-forced teardown that
  closes the co-expression body, unblocks the worker, and propagates to
  an ``upstream`` pipe so no producer is left blocked on a full channel;
* lifecycle events (start/cancel/timeout) on the monitor bus.

Crash isolation (:mod:`repro.coexpr.proc`) adds a second execution tier:
``backend="process"`` runs the worker body in a ``multiprocessing``
child speaking the same envelope protocol over IPC, with a heartbeat
watchdog that surfaces :class:`~repro.errors.PipeWorkerLost` instead of
hanging when the child dies, and graceful degradation back to this
thread backend when the body cannot cross a process boundary.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterator, List

from ..errors import (
    ChannelClosedError,
    PipeDeadlineExceeded,
    PipeError,
    PipeTimeoutError,
)
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator
from .channel import CLOSED, Channel
from .coexpression import CoExpression, coexpr_of
from .deadline import Deadline, deadline_from
from .scheduler import PipeScheduler, WorkerHandle, default_scheduler

_UNSET = object()


class Pipe(IconIterator):
    """A generator proxy whose co-expression runs in a separate thread.

    The worker starts lazily on the first step (matching the paper's
    proxy, whose thread spawns from ``next()``), or eagerly via
    :meth:`start`.  A pipe is an :class:`IconIterator`, so it can be used
    anywhere an expression can — but unlike a plain node it is single-shot:
    once its co-expression is exhausted it stays failed (``refresh`` makes
    a fresh pipe).
    """

    __slots__ = (
        "coexpr",
        "out",
        "capacity",
        "take_timeout",
        "batch",
        "max_linger",
        "backend",
        "heartbeat_interval",
        "heartbeat_timeout",
        "mp_context",
        "remote_address",
        "deadline",
        "upstream",
        "_scheduler",
        "_started",
        "_start_lock",
        "_cancelled",
        "_worker",
        "_process_worker",
        "_remote_worker",
        "_async_worker",
        "_degraded",
        "_errored",
        "_pending",
        "_flushes",
        "_batched_items",
        "_flusher",
        "_buf_cond",
        "_buffer",
        "_buf_oldest",
        "_producer_done",
    )

    def __init__(
        self,
        expr: Any,
        capacity: int = 0,
        scheduler: PipeScheduler | None = None,
        take_timeout: float | None = None,
        batch: int = 1,
        max_linger: float | None = None,
        backend: str = "thread",
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        mp_context: Any = None,
        remote_address: Any = None,
        deadline: Any = None,
    ) -> None:
        """Wrap *expr* (a co-expression, iterator node, generator factory,
        or iterable) in a threaded proxy with an output channel of
        *capacity* (0 = unbounded).  ``take_timeout`` is the default
        deadline applied to every :meth:`take` (None = wait forever).

        ``batch`` > 1 turns on batched transport: the worker coalesces up
        to that many results and moves them through the channel as one
        slice (``put_many``); :meth:`take` transparently unbatches, so
        consumers see identical element-at-a-time semantics.  The channel
        still holds individual items — ``capacity`` keeps counting
        elements and ``pipe.out`` stays wire-compatible.  ``max_linger``
        bounds how long (seconds) a partial batch may sit in the worker's
        buffer: setting it spawns a flusher thread alongside the worker
        that delivers aged partial batches even while the producer is
        blocked computing its next result — a slow producer can delay its
        *own* results, never ones already produced.  A partial batch is
        always flushed on exhaustion, crash (data first, then the error),
        and close.

        ``backend`` selects the execution tier: ``"thread"`` (the paper's
        shape) or ``"process"`` — the body runs in a ``multiprocessing``
        child (crash-isolated, GIL-free) streaming the same envelopes
        over IPC, watched by a heartbeat (``heartbeat_interval`` seconds
        between beats; ``heartbeat_timeout`` until a silent child is
        declared lost, default 10 intervals).  A body that cannot cross
        the process boundary degrades to the thread backend with a
        ``DEGRADED`` monitor event (see :mod:`repro.coexpr.proc`);
        ``mp_context`` overrides the multiprocessing context (default:
        fork where available).

        ``backend="remote"`` ships the body to the generator server at
        ``remote_address`` (a ``(host, port)`` pair — or a **list** of
        pairs / a :class:`~repro.net.cluster.ServerPool`, the replicated
        cluster tier: consistent-hash placement plus failover to the
        next live replica) and streams results back over a socket
        speaking the same envelopes, watched by the same heartbeat
        parameters.  A body that cannot be pickled — or a server (every
        replica, when pooled) that cannot be reached — degrades to the
        thread backend exactly as the process tier does (see
        :mod:`repro.net`).

        ``backend="async"`` runs the producer as a coroutine on the
        shared background event loop (:mod:`repro.coexpr.aio`): the
        consumer keeps this exact blocking surface, but the producer
        costs a task instead of a thread, multiplexed with every other
        async worker on one loop.  Backpressure is cooperative and the
        body runs in-process, so — unlike process/remote — no body ever
        degrades.

        ``deadline`` bounds the pipe end to end: seconds of budget (or a
        shared :class:`~repro.coexpr.deadline.Deadline`).  The budget is
        checked before every spawn (an expired pipe never forks a child
        or dials a socket), bounds every :meth:`take`, and propagates to
        the producer — whichever tier it runs on — so expiry actively
        tears the worker down (data flushed first, then
        :class:`~repro.errors.PipeDeadlineExceeded`, then close) instead
        of leaving it computing for a consumer that gave up.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if max_linger is not None and max_linger < 0:
            raise ValueError("max_linger must be >= 0 or None")
        if backend not in ("thread", "process", "remote", "async"):
            raise ValueError(
                "backend must be 'thread', 'process', 'remote', or 'async'"
            )
        if backend == "remote":
            if remote_address is None:
                raise ValueError("backend='remote' requires remote_address")
            # One (host, port) pair stays a plain tuple; a list of them
            # becomes a ServerPool (the cluster tier); an existing pool
            # passes through so callers that spawn many pipes — restarts,
            # chunk tasks — can share routing state.
            from ..net.cluster import normalize_remote_address

            remote_address = normalize_remote_address(remote_address)
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0 or None")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be > 0 or None")
        super().__init__()
        self.coexpr: CoExpression = coexpr_of(expr)
        self.capacity = capacity
        #: The output blocking queue — public, as in the paper.
        self.out = Channel(capacity)
        #: Default per-take deadline in seconds (None = block forever).
        self.take_timeout = take_timeout
        #: Producer-side coalescing factor (1 = unbatched, the paper's shape).
        self.batch = batch
        #: Seconds a partial batch may linger before being flushed.
        self.max_linger = max_linger
        #: Execution tier: "thread" or "process" (see the class docstring).
        self.backend = backend
        #: Seconds between child liveness beats (process backend).
        self.heartbeat_interval = (
            heartbeat_interval if heartbeat_interval is not None else 0.1
        )
        #: Seconds of silence before the watchdog declares the worker
        #: lost (None = 10 heartbeat intervals).
        self.heartbeat_timeout = heartbeat_timeout
        #: Multiprocessing context override (None = fork where available).
        self.mp_context = mp_context
        #: ``(host, port)`` of the generator server (remote backend) — or
        #: a :class:`~repro.net.cluster.ServerPool` over several replicas.
        self.remote_address = remote_address
        #: End-to-end budget (shared along pipelines and across
        #: supervised restarts — a retry does not reset the clock).
        self.deadline: Deadline | None = deadline_from(deadline)
        #: The pipe feeding this one, when built by ``patterns.stage`` —
        #: cancellation propagates through it so a dead stage never
        #: leaves its producer blocked on a full channel.
        self.upstream: Any = None
        self._scheduler = scheduler
        self._started = False
        self._start_lock = threading.Lock()
        self._cancelled = False
        self._worker: WorkerHandle | None = None
        #: The ProcessWorker when the process backend actually engaged.
        self._process_worker: Any = None
        #: The RemoteWorker when the remote backend actually engaged.
        self._remote_worker: Any = None
        #: The AsyncWorker when the async backend engaged.
        self._async_worker: Any = None
        #: Degradation reason when a process request fell back to threads.
        self._degraded: str | None = None
        self._errored = False
        #: Consumer-side buffer of unbatched results (only the taking
        #: thread touches it, matching Channel's one-consumer-per-take
        #: contract for ordering).
        self._pending: deque = deque()
        self._flushes = 0
        self._batched_items = 0
        # Linger-mode state: the coalescing buffer moves behind a
        # condition shared by the worker and the flusher thread.
        self._flusher: WorkerHandle | None = None
        self._buf_cond = (
            threading.Condition() if (batch > 1 and max_linger is not None) else None
        )
        self._buffer: List[Any] = []
        self._buf_oldest = 0.0
        self._producer_done = False

    # -- lifecycle events ------------------------------------------------------

    def _emit(self, kind: str, value: Any = None) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pipe:{self.coexpr.name}", 0, value))

    def _deadline_error(self, where: str) -> PipeDeadlineExceeded:
        """Record the expiry and build the error to raise/deliver."""
        self._emit(EventKind.DEADLINE_EXPIRED, {"where": where, "remaining": 0.0})
        return PipeDeadlineExceeded(
            f"pipe {self.coexpr.name!r}: deadline exceeded ({where})",
            where=where,
        )

    # -- worker --------------------------------------------------------------

    def start(self) -> "Pipe":
        """Spawn the producer worker (idempotent; no-op once cancelled).

        With ``backend="process"`` this forks the body into a child and
        submits the pump/watchdog thread; if the body cannot cross the
        process boundary the pipe degrades to the thread backend in
        place (``DEGRADED`` monitor event, :attr:`degraded` set).

        An already-expired deadline short-circuits *before* any spawn —
        no child is forked and no socket is dialed past budget; the pipe
        cancels itself and raises :class:`PipeDeadlineExceeded`.
        """
        deadline = self.deadline
        if deadline is not None and not self._started and deadline.expired():
            error = self._deadline_error("start")
            self.cancel()
            raise error
        with self._start_lock:
            if self._started or self._cancelled:
                return self
            self._started = True
        scheduler = self._scheduler or default_scheduler()
        if self.backend == "process":
            from .proc import start_process_worker

            worker = start_process_worker(self, scheduler)
            if worker is not None:
                self._process_worker = worker
                self._worker = worker.handle
                self._emit(EventKind.START)
                return self
            # Degraded: fall through to the thread backend below.
        elif self.backend == "remote":
            from ..net.client import start_remote_worker

            worker = start_remote_worker(self, scheduler)
            if worker is not None:
                self._remote_worker = worker
                self._worker = worker.handle
                self._emit(EventKind.START)
                return self
            # Degraded: fall through to the thread backend below.
        elif self.backend == "async":
            from .aio import start_async_worker

            worker = start_async_worker(self, scheduler)
            if worker is not None:
                self._async_worker = worker
                self._worker = worker.handle
                self._emit(EventKind.START)
                return self
            # Degraded: fall through to the thread backend below.
        self._worker = scheduler.submit(self._run, name=f"pipe-{self.coexpr.name}")
        if self._buf_cond is not None:
            self._flusher = scheduler.submit(
                self._run_flusher, name=f"linger-{self.coexpr.name}"
            )
        self._emit(EventKind.START)
        return self

    @property
    def degraded(self) -> str | None:
        """Why a process/remote/async backend request fell back to
        threads (None while the requested tier engaged, or when the
        thread backend was asked for)."""
        return self._degraded

    def _run(self) -> None:
        if self.batch > 1:
            self._run_batched()
            return
        out = self.out
        coexpr = self.coexpr
        deadline = self.deadline
        try:
            while not self._cancelled:
                if deadline is not None and deadline.expired():
                    raise self._deadline_error("producer")
                value = coexpr.activate()
                if value is FAIL:
                    break
                out.put(value)
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        except Exception as error:  # noqa: BLE001 - forwarded to consumer
            self._errored = True
            try:
                out.put_error(error)  # unthrottled: never blocks on a full queue
            except ChannelClosedError:
                pass  # cancelled while reporting: consumer is gone
        finally:
            out.close()
            # A worker that died (error) or was cancelled abandons its
            # upstream mid-stream; propagate so the producer chain above
            # is not left blocked on a full channel.
            if self._cancelled or self._errored:
                self._cancel_upstream()

    def _flush(self, buffer: List[Any]) -> None:
        """Move the coalesced *buffer* through the channel as one slice."""
        self.out.put_many(buffer)
        self._flushes += 1
        self._batched_items += len(buffer)
        if lifecycle_enabled():
            self._emit(
                EventKind.BATCH,
                {"size": len(buffer), "queued": len(self.out)},
            )
        buffer.clear()

    def _run_batched(self) -> None:
        if self._buf_cond is not None:
            self._run_batched_linger()
            return
        # Throughput mode (no linger bound): the buffer is worker-local,
        # so coalescing costs no locking at all until the flush.
        out = self.out
        coexpr = self.coexpr
        batch = self.batch
        deadline = self.deadline
        buffer: List[Any] = []
        try:
            while not self._cancelled:
                if deadline is not None and deadline.expired():
                    raise self._deadline_error("producer")
                value = coexpr.activate()
                if value is FAIL:
                    break
                buffer.append(value)
                if len(buffer) >= batch:
                    self._flush(buffer)
            if buffer:  # flush-on-exhaustion: no result is stranded
                self._flush(buffer)
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        except Exception as error:  # noqa: BLE001 - forwarded to consumer
            self._errored = True
            try:
                # Results produced before the crash are delivered before
                # the error — batching never reorders data past an error.
                if buffer:
                    self._flush(buffer)
                out.put_error(error)  # unthrottled: never blocks on a full queue
            except ChannelClosedError:
                pass  # cancelled while reporting: consumer is gone
        finally:
            out.close()
            if self._cancelled or self._errored:
                self._cancel_upstream()

    def _flush_locked(self) -> None:
        """Flush the shared linger buffer; caller holds ``_buf_cond``."""
        if self._buffer:
            buffer, self._buffer = self._buffer, []
            self._flush(buffer)

    def _run_batched_linger(self) -> None:
        out = self.out
        coexpr = self.coexpr
        batch = self.batch
        cond = self._buf_cond
        deadline = self.deadline
        try:
            while not self._cancelled:
                if deadline is not None and deadline.expired():
                    raise self._deadline_error("producer")
                value = coexpr.activate()
                if value is FAIL:
                    break
                with cond:
                    if not self._buffer:
                        self._buf_oldest = time.monotonic()
                        cond.notify_all()  # arm the flusher's linger clock
                    self._buffer.append(value)
                    if len(self._buffer) >= batch:
                        self._flush_locked()
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        except Exception as error:  # noqa: BLE001 - forwarded to consumer
            self._errored = True
            try:
                with cond:
                    self._flush_locked()  # data first, then the error
                out.put_error(error)
            except ChannelClosedError:
                pass  # cancelled while reporting: consumer is gone
        finally:
            with cond:
                self._producer_done = True
                try:
                    self._flush_locked()  # flush-on-exhaustion/close
                except ChannelClosedError:
                    pass
                cond.notify_all()  # release the flusher
            out.close()
            if self._cancelled or self._errored:
                self._cancel_upstream()

    def _run_flusher(self) -> None:
        """Deliver partial batches older than ``max_linger`` while the
        worker is away computing — the latency half of the batching
        trade-off.  Exits when the worker finishes and the buffer drains."""
        cond = self._buf_cond
        max_linger = self.max_linger
        with cond:
            while True:
                if not self._buffer:
                    if self._producer_done:
                        return
                    cond.wait()
                    continue
                wait = self._buf_oldest + max_linger - time.monotonic()
                if wait > 0:
                    cond.wait(wait)
                    continue
                try:
                    self._flush_locked()
                except ChannelClosedError:
                    return  # consumer cancelled: nothing left to deliver

    def _cancel_upstream(self) -> None:
        upstream = self.upstream
        if upstream is None:
            return
        canceller = getattr(upstream, "cancel", None)
        if canceller is not None:
            canceller()

    # -- consumer ------------------------------------------------------------

    def take(self, timeout: Any = _UNSET) -> Any:
        """One blocking step: the next result or :data:`FAIL` (paper: "an
        @ operation on a pipe is out.take()").

        *timeout* overrides the pipe's ``take_timeout`` for this call;
        expiry raises :class:`PipeTimeoutError` (the pipe stays usable —
        cancel it to tear the producer down).  A pipe ``deadline`` also
        bounds the wait, and its expiry is *active*: the pipe cancels
        itself (tearing down the producer, whichever tier it runs on)
        and raises :class:`PipeDeadlineExceeded` instead.
        """
        if timeout is _UNSET:
            timeout = self.take_timeout
        if self._pending:
            # Unbatching fast path: already-taken results are served
            # without touching the channel lock at all.
            try:
                return self._pending.popleft()
            except IndexError:
                pass  # raced with another consumer (fan-out); fall through
        deadline = self.deadline
        if deadline is not None:
            if deadline.expired():
                error = self._deadline_error("take")
                self.cancel()
                raise error
            timeout = deadline.bound(timeout)
        try:
            self.start()
            if self.batch > 1:
                item = self.out.take_many(self.batch, timeout)
            else:
                item = self.out.take(timeout)
        except PipeDeadlineExceeded:
            # The producer's own expiry envelope (or a start-time
            # short-circuit): already the right error — tear down and
            # let it through unwrapped.
            self.cancel()
            raise
        except PipeTimeoutError:
            if deadline is not None and deadline.expired():
                error = self._deadline_error("take")
                self.cancel()
                raise error from None
            self._emit(EventKind.TIMEOUT, timeout)
            raise PipeTimeoutError(
                f"pipe {self.coexpr.name!r}: no result within {timeout}s"
            ) from None
        if item is CLOSED:
            return FAIL
        if self.batch > 1:
            # take_many returned a non-empty slice: serve the head now,
            # stash the rest for lock-free subsequent takes.
            if len(item) > 1:
                self._pending.extend(item[1:])
            return item[0]
        return item

    def next_value(self) -> Any:  # stateful stepping: no auto-restart
        return self.take()

    def iterate(self) -> Iterator[Any]:
        """Drain the pipe.  NOTE: single-shot — a second pass finds the
        channel closed and fails immediately (use :meth:`refresh`)."""
        self.start()
        while True:
            item = self.take()
            if item is FAIL:
                return
            yield item

    # -- lifecycle -----------------------------------------------------------

    def cancel(self, join: bool = False, timeout: float | None = None) -> bool:
        """Stop the producer (idempotent).

        Closes the output channel (unblocking a blocked ``put``), flags
        the worker loop to exit, closes the co-expression body (running
        its ``finally`` blocks), and propagates to :attr:`upstream`.

        With ``join=True`` this is the *graceful* form: it also waits up
        to *timeout* seconds for the worker thread to finish.  Returns
        True when the worker is known to be done (or never started).

        Strictly idempotent: only the first call emits the ``CANCEL``
        event, closes the body, and propagates upstream — a second
        cancel (or a cancel after natural exhaustion) merely re-joins
        the already-stopped worker.
        """
        first = False
        with self._start_lock:
            if not self._cancelled:
                self._cancelled = True
                first = True
        if first:
            self._emit(EventKind.CANCEL)
            self.out.close()
            self.coexpr.close()
            process_worker = self._process_worker
            if process_worker is not None:
                process_worker.terminate()  # the pump reaps and untracks
            remote_worker = self._remote_worker
            if remote_worker is not None:
                remote_worker.terminate()  # sends cancel, closes the socket
            async_worker = self._async_worker
            if async_worker is not None:
                async_worker.terminate()  # cancels the loop task
            self._cancel_upstream()
        worker = self._worker
        if worker is None:
            return True
        if join:
            return worker.join(timeout)
        return not worker.is_alive()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def refresh(self) -> "Pipe":
        """``^p`` — a new pipe over a refreshed copy of the co-expression."""
        return Pipe(
            self.coexpr.refresh(),
            self.capacity,
            self._scheduler,
            take_timeout=self.take_timeout,
            batch=self.batch,
            max_linger=self.max_linger,
            backend=self.backend,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            mp_context=self.mp_context,
            remote_address=self.remote_address,
            deadline=self.deadline,  # the same budget: a refresh is not a reset
        )

    @property
    def batch_stats(self) -> dict:
        """Producer-side batching counters: flushes, items moved, and the
        mean realized batch size (equals 1.0-per-put semantics when
        ``batch=1``, where no coalescing happens and this stays zeroed)."""
        flushes = self._flushes
        items = self._batched_items
        return {
            "flushes": flushes,
            "items": items,
            "mean_batch": (items / flushes) if flushes else 0.0,
        }

    # -- runtime protocol hooks ------------------------------------------------

    def icon_activate(self, transmit: Any = None) -> Any:
        if transmit is not None:
            raise PipeError("cannot transmit a value into a pipe")
        return self.take()

    def icon_promote(self) -> Iterator[Any]:
        return self.iterate()

    def icon_size(self) -> int:
        return self.coexpr.icon_size()

    def icon_type(self) -> str:
        return "pipe"

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("running" if self._started else "unstarted")
        )
        return f"Pipe({self.coexpr.name}, {state}, queued={len(self.out)})"
