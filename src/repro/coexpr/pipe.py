"""Pipes — multithreaded generator proxies (paper Section III.B).

    ``|>e → new Iterator() { next() { new Thread { run() {
        c=|<>e; while (!fail) { out.put(@c); }}}.start() }}``

A pipe owns a co-expression, runs it to exhaustion in a worker thread,
and streams each result through a blocking channel; stepping the pipe
(``@``) is a ``take``.  The surrounding expression therefore runs in
parallel with the piped expression — chains of pipes form parallel
pipelines.

Per the paper, the output queue ``out`` "is exposed as a public field to
permit further manipulation", and bounding its capacity throttles the
producer thread.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from ..errors import ChannelClosedError, PipeError
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator
from .channel import CLOSED, Channel
from .coexpression import CoExpression, coexpr_of
from .scheduler import PipeScheduler, default_scheduler


class Pipe(IconIterator):
    """A generator proxy whose co-expression runs in a separate thread.

    The worker starts lazily on the first step (matching the paper's
    proxy, whose thread spawns from ``next()``), or eagerly via
    :meth:`start`.  A pipe is an :class:`IconIterator`, so it can be used
    anywhere an expression can — but unlike a plain node it is single-shot:
    once its co-expression is exhausted it stays failed (``refresh`` makes
    a fresh pipe).
    """

    __slots__ = (
        "coexpr",
        "out",
        "capacity",
        "_scheduler",
        "_started",
        "_start_lock",
        "_cancelled",
    )

    def __init__(
        self,
        expr: Any,
        capacity: int = 0,
        scheduler: PipeScheduler | None = None,
    ) -> None:
        """Wrap *expr* (a co-expression, iterator node, generator factory,
        or iterable) in a threaded proxy with an output channel of
        *capacity* (0 = unbounded)."""
        super().__init__()
        self.coexpr: CoExpression = coexpr_of(expr)
        self.capacity = capacity
        #: The output blocking queue — public, as in the paper.
        self.out = Channel(capacity)
        self._scheduler = scheduler
        self._started = False
        self._start_lock = threading.Lock()
        self._cancelled = False

    # -- worker --------------------------------------------------------------

    def start(self) -> "Pipe":
        """Spawn the producer thread (idempotent)."""
        with self._start_lock:
            if self._started:
                return self
            self._started = True
        scheduler = self._scheduler or default_scheduler()
        scheduler.submit(self._run, name=f"pipe-{self.coexpr.name}")
        return self

    def _run(self) -> None:
        out = self.out
        coexpr = self.coexpr
        try:
            while not self._cancelled:
                value = coexpr.activate()
                if value is FAIL:
                    break
                out.put(value)
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        except Exception as error:  # noqa: BLE001 - forwarded to consumer
            try:
                out.put_error(error)
            except ChannelClosedError:
                pass  # cancelled while reporting: consumer is gone
        finally:
            out.close()

    # -- consumer ------------------------------------------------------------

    def take(self) -> Any:
        """One blocking step: the next result or :data:`FAIL` (paper: "an
        @ operation on a pipe is out.take()")."""
        self.start()
        item = self.out.take()
        if item is CLOSED:
            return FAIL
        return item

    def next_value(self) -> Any:  # stateful stepping: no auto-restart
        return self.take()

    def iterate(self) -> Iterator[Any]:
        """Drain the pipe.  NOTE: single-shot — a second pass finds the
        channel closed and fails immediately (use :meth:`refresh`)."""
        self.start()
        while True:
            item = self.out.take()
            if item is CLOSED:
                return
            yield item

    # -- lifecycle -----------------------------------------------------------

    def cancel(self) -> None:
        """Stop the producer: close the channel (unblocking a blocked
        ``put``) and flag the worker loop to exit."""
        self._cancelled = True
        self.out.close()

    def refresh(self) -> "Pipe":
        """``^p`` — a new pipe over a refreshed copy of the co-expression."""
        return Pipe(self.coexpr.refresh(), self.capacity, self._scheduler)

    # -- runtime protocol hooks ------------------------------------------------

    def icon_activate(self, transmit: Any = None) -> Any:
        if transmit is not None:
            raise PipeError("cannot transmit a value into a pipe")
        return self.take()

    def icon_promote(self) -> Iterator[Any]:
        return self.iterate()

    def icon_size(self) -> int:
        return self.coexpr.icon_size()

    def icon_type(self) -> str:
        return "pipe"

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("running" if self._started else "unstarted")
        )
        return f"Pipe({self.coexpr.name}, {state}, queued={len(self.out)})"
