"""Futures and M-vars — singleton pipes (paper Section III.B).

"In its simplest form, a singleton piped iterator that produces one result
forms a future or mutable variable, whose put and take operations wait
until the channel is empty or full respectively."  The paper grounds this
in M-structures, M-Vars, Linda tuples, and CML's synchronization
variables; here both views are provided:

* :class:`MVar` — the mutable-variable building block: ``put`` blocks
  while full, ``take`` blocks while empty, ``read`` peeks without taking.
* :class:`Future` — a write-once result of a computation spawned on a
  pipe; ``get`` blocks until the value (or re-raises the producer error).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from ..errors import PipeError
from ..runtime.failure import FAIL
from .channel import deadline_of, deadline_wait
from .coexpression import CoExpression
from .pipe import Pipe
from .scheduler import PipeScheduler

_EMPTY = object()


class MVar:
    """A blocking one-slot mutable variable (an M-structure cell)."""

    def __init__(self) -> None:
        self._value: Any = _EMPTY
        self._lock = threading.Lock()
        self._filled = threading.Condition(self._lock)
        self._emptied = threading.Condition(self._lock)

    def put(self, value: Any, timeout: float | None = None) -> None:
        """Store a value; blocks while the cell is full.

        *timeout* is a monotonic deadline over the whole wait (never
        reset by wakeups); expiry raises :class:`PipeTimeoutError`.
        """
        deadline = deadline_of(timeout)
        with self._emptied:
            while self._value is not _EMPTY:
                deadline_wait(self._emptied, deadline, "MVar.put")
            self._value = value
            self._filled.notify()

    def take(self, timeout: float | None = None) -> Any:
        """Remove and return the value; blocks while the cell is empty."""
        deadline = deadline_of(timeout)
        with self._filled:
            while self._value is _EMPTY:
                deadline_wait(self._filled, deadline, "MVar.take")
            value, self._value = self._value, _EMPTY
            self._emptied.notify()
            return value

    def read(self, timeout: float | None = None) -> Any:
        """Return the value without emptying; blocks while empty (CML's
        wait-until-defined synchronization variable)."""
        deadline = deadline_of(timeout)
        with self._filled:
            while self._value is _EMPTY:
                deadline_wait(self._filled, deadline, "MVar.read")
            return self._value

    def try_take(self) -> Any:
        """Non-blocking take; :data:`FAIL` when empty."""
        with self._lock:
            if self._value is _EMPTY:
                return FAIL
            value, self._value = self._value, _EMPTY
            self._emptied.notify()
            return value

    @property
    def full(self) -> bool:
        with self._lock:
            return self._value is not _EMPTY


class Future:
    """The first result of an expression evaluated in a separate thread.

    Built exactly as the paper says: a pipe whose output queue is bounded
    to one, stepped once.  ``get()`` memoizes; a failing expression makes
    the future fail (:data:`FAIL`), and a raising expression re-raises at
    ``get``.
    """

    def __init__(
        self,
        expr: Any,
        scheduler: PipeScheduler | None = None,
    ) -> None:
        self._pipe = Pipe(expr, capacity=1, scheduler=scheduler)
        self._pipe.start()
        self._result: Any = _EMPTY
        self._error: BaseException | None = None
        self._lock = threading.Lock()

    @classmethod
    def of_callable(
        cls, fn: Callable[[], Any], scheduler: PipeScheduler | None = None
    ) -> "Future":
        """A future over a plain host callable."""
        def body() -> Iterator[Any]:
            yield fn()

        return cls(CoExpression(body), scheduler=scheduler)

    def get(self, timeout: float | None = None) -> Any:
        """Block until the result; :data:`FAIL` if the expression failed."""
        with self._lock:
            if self._error is not None:
                raise self._error
            if self._result is not _EMPTY:
                return self._result
            try:
                item = self._pipe.out.take(timeout)
            except TimeoutError:
                raise
            except BaseException as error:
                self._error = error
                self._pipe.cancel()
                raise
            from .channel import CLOSED

            self._result = FAIL if item is CLOSED else item
            self._pipe.cancel()  # the producer's work is done; stop it
            return self._result

    @property
    def done(self) -> bool:
        """True once the value is available (without blocking)."""
        with self._lock:
            if self._result is not _EMPTY or self._error is not None:
                return True
            return len(self._pipe.out) > 0 or self._pipe.out.closed

    # Runtime hooks: a future activates to its single value, then fails.

    def icon_activate(self, transmit: Any = None) -> Any:
        if transmit is not None:
            raise PipeError("cannot transmit a value into a future")
        with self._lock:
            already = self._result is not _EMPTY
        if already:
            return FAIL
        return self.get()

    def icon_promote(self) -> Iterator[Any]:
        value = self.icon_activate()
        if value is not FAIL:
            yield value

    def icon_type(self) -> str:
        return "future"
