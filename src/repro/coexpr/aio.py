"""The async execution tier — cooperative pipes on one event loop.

The paper's pipe is a *threaded* generator proxy: one OS thread per
producer, a blocking channel between it and the consumer.  This module
maps the same activate/suspend protocol onto asyncio coroutines instead
— activation-as-call, suspension-as-await, in the style of Racordon's
higher-order coroutines — so thousands of concurrent pipes cost one OS
thread (the shared event loop) instead of thousands.

Three layers:

* :class:`AsyncChannel` — the :class:`~repro.coexpr.channel.Channel`
  contract for coroutines: awaitable ``put``/``take`` with close
  semantics, error envelopes, deadline-correct timeouts, and the same
  data-before-error ordering guarantees;
* :class:`AsyncPipe` — an async-native generator proxy (``async for``
  take) for code that already lives inside an event loop;
* :func:`start_async_worker` — the hook :meth:`Pipe.start` calls for
  ``backend="async"``: the pipe keeps its ordinary threaded surface
  (blocking ``take``, the public ``out`` channel) but its producer runs
  as a coroutine on the shared background loop, multiplexed with every
  other async worker.  Backpressure is cooperative: a bounded channel
  parks the coroutine on a poll-sleep, never the loop.

**Refresh is a snapshot.**  ``^c`` on an async pipe follows Prokopec &
Liu's coroutines-with-snapshots model: the refreshed copy restarts from
the co-expression's *creation* environment (the snapshot), not from the
suspended coroutine frame — identical to the thread tier's refresh
semantics, which is what lets supervision replay an async worker
exactly as it replays a threaded one.

**Cooperative caveat.**  ``activate()`` is synchronous, so one
activation runs to completion on the loop before anything else does;
the tier multiplexes *between* results, not inside them.  A worker
yields to the loop after every activation (``await asyncio.sleep(0)``),
so fairness is per-item.  Because activations are atomic on the loop,
a ``max_linger`` bound needs no separate flusher thread here: the age
check after each activation observes exactly what a concurrent flusher
could have — a partial batch can only out-linger its bound while the
producer is inside one activation, same as a thread-tier flusher that
lost the race for the buffer lock.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, AsyncIterator, List

from ..errors import ChannelClosedError, PipeTimeoutError
from ..monitor.events import Event, EventKind, emit_lifecycle, lifecycle_enabled
from ..runtime.failure import FAIL
from .channel import CLOSED, RaiseEnvelope, deadline_of, remaining
from .coexpression import CoExpression, coexpr_of
from .deadline import Deadline, deadline_from
from .scheduler import WorkerHandle

#: How long a backpressured async worker sleeps before re-checking a
#: full bounded channel (cooperative backpressure poll slice).
_BACKPRESSURE_SLICE = 0.005

# ---------------------------------------------------------------------------
# The shared background event loop.
# ---------------------------------------------------------------------------

_loop: asyncio.AbstractEventLoop | None = None
_loop_lock = threading.Lock()


def event_loop() -> asyncio.AbstractEventLoop:
    """The shared background loop every ``backend="async"`` worker runs
    on (started lazily, daemon, process-wide — like the default
    scheduler, it is shared infrastructure and never leak-checked).
    """
    global _loop
    with _loop_lock:
        if _loop is not None and not _loop.is_closed():
            return _loop
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            loop.call_soon(ready.set)
            loop.run_forever()

        thread = threading.Thread(
            target=_run, name="repro-aio-loop", daemon=True
        )
        thread.start()
        ready.wait()
        _loop = loop
        return loop


async def _cond_wait(
    cond: asyncio.Condition, deadline: float | None, what: str
) -> None:
    """One deadline-aware condition wait (the async twin of
    :func:`~repro.coexpr.channel.deadline_wait`)."""
    left = remaining(deadline)
    if left is None:
        await cond.wait()
        return
    if left <= 0:
        raise PipeTimeoutError(f"{what} timed out")
    try:
        await asyncio.wait_for(cond.wait(), left)
    except asyncio.TimeoutError:
        raise PipeTimeoutError(f"{what} timed out") from None


class AsyncChannel:
    """A bounded awaitable queue with close semantics.

    The coroutine-side mirror of :class:`~repro.coexpr.channel.Channel`:
    ``put``/``take`` are coroutines that park their *task* (never a
    thread), ``close`` is idempotent and wakes every waiter, a producer
    exception travels as a :class:`RaiseEnvelope` and re-raises at the
    consumer, and error delivery bypasses the capacity bound.  Single
    event loop only — this is task-safe, not thread-safe.
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._items: List[Any] = []
        self._cond = asyncio.Condition()
        self._closed = False

    # -- producer side -------------------------------------------------------

    async def put(self, item: Any, timeout: float | None = None) -> None:
        """Park until space is available, then enqueue *item* (raises
        :class:`ChannelClosedError` if closed while waiting)."""
        deadline = deadline_of(timeout)
        async with self._cond:
            if self.capacity:
                while len(self._items) >= self.capacity and not self._closed:
                    await _cond_wait(self._cond, deadline, "AsyncChannel.put")
            if self._closed:
                raise ChannelClosedError("put on a closed channel")
            self._items.append(item)
            self._cond.notify_all()

    async def put_many(
        self, items: Any, timeout: float | None = None
    ) -> int:
        """Enqueue a whole slice, parking only when a bounded channel
        fills mid-batch; returns the number enqueued."""
        batch = list(items)
        if not batch:
            return 0
        deadline = deadline_of(timeout)
        sent = 0
        async with self._cond:
            while True:
                if self._closed:
                    raise ChannelClosedError(
                        f"put_many on a closed channel ({sent}/{len(batch)} sent)"
                    )
                if self.capacity:
                    free = self.capacity - len(self._items)
                    if free <= 0:
                        await _cond_wait(
                            self._cond, deadline, "AsyncChannel.put_many"
                        )
                        continue
                    chunk = batch[sent : sent + free]
                else:
                    chunk = batch[sent:]
                self._items.extend(chunk)
                sent += len(chunk)
                self._cond.notify_all()
                if sent >= len(batch):
                    return sent

    def put_error(self, error: BaseException) -> None:
        """Enqueue an exception to re-raise at the consumer (unthrottled:
        a crash report never blocks behind a full queue)."""
        if self._closed:
            raise ChannelClosedError("put_error on a closed channel")
        self._items.append(RaiseEnvelope(error))
        self._notify_soon()

    def close(self) -> None:
        """Close the channel; queued items remain takeable.  Idempotent;
        wakes every parked producer and consumer."""
        self._closed = True
        self._notify_soon()

    def _notify_soon(self) -> None:
        """Wake waiters from a context that does not hold the condition
        lock (``put_error``/``close`` are plain calls, not coroutines)."""

        async def _notify() -> None:
            async with self._cond:
                self._cond.notify_all()

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # no loop running: nobody can be parked on the condition
        loop.create_task(_notify())

    # -- consumer side -------------------------------------------------------

    async def take(self, timeout: float | None = None) -> Any:
        """Park until an item is available; :data:`CLOSED` after drain."""
        deadline = deadline_of(timeout)
        async with self._cond:
            while not self._items and not self._closed:
                await _cond_wait(self._cond, deadline, "AsyncChannel.take")
            if not self._items:
                return CLOSED
            item = self._items.pop(0)
            self._cond.notify_all()
        if isinstance(item, RaiseEnvelope):
            raise item.error
        return item

    async def take_many(self, max_n: int, timeout: float | None = None) -> Any:
        """Take up to *max_n* queued items at once (never reordering an
        error past the data that preceded it)."""
        if max_n < 1:
            raise ValueError("max_n must be >= 1")
        deadline = deadline_of(timeout)
        async with self._cond:
            while not self._items and not self._closed:
                await _cond_wait(self._cond, deadline, "AsyncChannel.take_many")
            if not self._items:
                return CLOSED
            batch: List[Any] = []
            while self._items and len(batch) < max_n:
                if isinstance(self._items[0], RaiseEnvelope):
                    if batch:
                        break  # deliver the preceding data first
                    envelope = self._items.pop(0)
                    self._cond.notify_all()
                    raise envelope.error
                batch.append(self._items.pop(0))
            self._cond.notify_all()
        return batch

    async def feed_wire(self, kind: str, payload: Any = None) -> bool:
        """Apply one wire envelope (the async pump hook); True on close."""
        from .wire import WIRE_BEAT, WIRE_CLOSE, WIRE_DATA, WIRE_ERROR

        if kind == WIRE_DATA:
            await self.put_many(payload)
        elif kind == WIRE_ERROR:
            self.put_error(payload)
        elif kind == WIRE_CLOSE:
            self.close()
            return True
        elif kind != WIRE_BEAT:
            raise ValueError(f"unknown wire envelope kind {kind!r}")
        return False

    # -- inspection ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def __aiter__(self) -> AsyncIterator[Any]:
        return self._drain()

    async def _drain(self) -> AsyncIterator[Any]:
        while True:
            item = await self.take()
            if item is CLOSED:
                return
            yield item

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"AsyncChannel(capacity={self.capacity}, "
            f"queued={len(self._items)}, {state})"
        )


class AsyncPipe:
    """An async-native generator proxy: ``async for`` over a body.

    For code that already lives inside an event loop.  The producer
    coroutine activates the co-expression to exhaustion, streaming every
    result through an :class:`AsyncChannel` with the channel contract
    the threaded pipe pins: production order, data before error, close
    terminates.  The worker task starts lazily on the first take (the
    paper's proxy spawns from ``next()``) or eagerly via :meth:`start`.

    ``refresh()`` is snapshot-and-restart (Prokopec & Liu): a sibling
    pipe over a fresh copy of the co-expression's creation environment,
    sharing the same deadline budget — a refresh is not a reset.
    """

    def __init__(
        self,
        expr: Any,
        capacity: int = 0,
        batch: int = 1,
        take_timeout: float | None = None,
        deadline: Any = None,
    ) -> None:
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.coexpr: CoExpression = coexpr_of(expr)
        self.capacity = capacity
        #: The output queue — public, as in the paper.
        self.out = AsyncChannel(capacity)
        self.batch = batch
        self.take_timeout = take_timeout
        #: End-to-end budget (shared across refreshes and pipelines).
        self.deadline: Deadline | None = deadline_from(deadline)
        self.upstream: Any = None
        self._task: asyncio.Task | None = None
        self._cancelled = False
        self._errored = False
        self._pending: List[Any] = []

    def _emit(self, kind: str, value: Any = None) -> None:
        if lifecycle_enabled():
            emit_lifecycle(Event(kind, f"pipe:{self.coexpr.name}", 0, value))

    def start(self) -> "AsyncPipe":
        """Spawn the producer task on the running loop (idempotent)."""
        if self._task is None and not self._cancelled:
            self._task = asyncio.get_running_loop().create_task(
                self._produce(), name=f"apipe-{self.coexpr.name}"
            )
            self._emit(EventKind.START)
            self._emit(EventKind.ASYNC_SESSION, {"transport": "loop"})
        return self

    async def _produce(self) -> None:
        out = self.out
        coexpr = self.coexpr
        deadline = self.deadline
        batch = self.batch
        buffer: List[Any] = []
        try:
            while not self._cancelled:
                if deadline is not None and deadline.expired():
                    self._emit(
                        EventKind.DEADLINE_EXPIRED,
                        {"where": "producer", "remaining": 0.0},
                    )
                    from ..errors import PipeDeadlineExceeded

                    raise PipeDeadlineExceeded(
                        f"pipe {coexpr.name!r}: deadline exceeded (producer)",
                        where="producer",
                    )
                value = coexpr.activate()
                if value is FAIL:
                    break
                if batch > 1:
                    buffer.append(value)
                    if len(buffer) >= batch:
                        await out.put_many(buffer)
                        buffer = []
                else:
                    await out.put(value)
                await asyncio.sleep(0)  # per-item fairness across tasks
            if buffer:
                await out.put_many(buffer)  # flush-on-exhaustion
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - forwarded to consumer
            self._errored = True
            try:
                if buffer:
                    await out.put_many(buffer)  # data before the error
                out.put_error(error)
            except ChannelClosedError:
                pass
        finally:
            out.close()
            if self._cancelled or self._errored:
                self._cancel_upstream()

    def _cancel_upstream(self) -> None:
        upstream = self.upstream
        if upstream is not None:
            canceller = getattr(upstream, "cancel", None)
            if canceller is not None:
                canceller()

    async def take(self, timeout: Any = None) -> Any:
        """The next result or :data:`FAIL` once exhausted."""
        if self._pending:
            return self._pending.pop(0)
        if timeout is None:
            timeout = self.take_timeout
        deadline = self.deadline
        if deadline is not None:
            if deadline.expired():
                self._emit(
                    EventKind.DEADLINE_EXPIRED,
                    {"where": "take", "remaining": 0.0},
                )
                from ..errors import PipeDeadlineExceeded

                self.cancel()
                raise PipeDeadlineExceeded(
                    f"pipe {self.coexpr.name!r}: deadline exceeded (take)",
                    where="take",
                )
            timeout = deadline.bound(timeout)
        self.start()
        try:
            if self.batch > 1:
                item = await self.out.take_many(self.batch, timeout)
            else:
                item = await self.out.take(timeout)
        except PipeTimeoutError:
            if deadline is not None and deadline.expired():
                # A deadline-bounded wait that timed out IS the expiry:
                # active teardown, the deadline error, not a plain timeout.
                from ..errors import PipeDeadlineExceeded

                self._emit(
                    EventKind.DEADLINE_EXPIRED,
                    {"where": "take", "remaining": 0.0},
                )
                self.cancel()
                raise PipeDeadlineExceeded(
                    f"pipe {self.coexpr.name!r}: deadline exceeded (take)",
                    where="take",
                ) from None
            raise
        if item is CLOSED:
            return FAIL
        if self.batch > 1:
            if len(item) > 1:
                self._pending.extend(item[1:])
            return item[0]
        return item

    def cancel(self) -> bool:
        """Stop the producer (idempotent): close channel + body + task."""
        first = not self._cancelled
        self._cancelled = True
        if first:
            self._emit(EventKind.CANCEL)
            self.out.close()
            self.coexpr.close()
            if self._task is not None and not self._task.done():
                self._task.cancel()
            self._cancel_upstream()
        return self._task is None or self._task.done()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def refresh(self) -> "AsyncPipe":
        """``^p`` — snapshot-and-restart: a new pipe over a refreshed
        copy of the co-expression (same deadline budget)."""
        return AsyncPipe(
            self.coexpr.refresh(),
            capacity=self.capacity,
            batch=self.batch,
            take_timeout=self.take_timeout,
            deadline=self.deadline,
        )

    def __aiter__(self) -> AsyncIterator[Any]:
        return self._iterate()

    async def _iterate(self) -> AsyncIterator[Any]:
        self.start()
        while True:
            item = await self.take()
            if item is FAIL:
                return
            yield item

    def __repr__(self) -> str:
        state = (
            "cancelled"
            if self._cancelled
            else ("running" if self._task is not None else "unstarted")
        )
        return f"AsyncPipe({self.coexpr.name}, {state}, queued={len(self.out)})"


# ---------------------------------------------------------------------------
# backend="async": the coroutine worker behind an ordinary Pipe.
# ---------------------------------------------------------------------------


class AsyncWorker:
    """One pipe body running as a task on the shared background loop.

    The owner pipe keeps its threaded surface — the consumer blocks in
    ``Channel.take`` exactly as with the thread backend — while the
    producer coroutine multiplexes with every other async worker on one
    OS thread.  Registers with the scheduler's session accounting
    (``leaked()``/``shutdown()`` cover the pending task the way they
    cover sockets), and exposes the worker/session protocol:
    ``handle``/``join``/``is_alive``/``name``, ``kill`` (cancel the
    task now) and ``terminate`` (the :meth:`Pipe.cancel` hook).
    """

    __slots__ = ("pipe", "scheduler", "name", "handle", "_future")

    def __init__(self, pipe: Any, scheduler: Any) -> None:
        self.pipe = pipe
        self.scheduler = scheduler
        self.name = f"apipe-{pipe.coexpr.name}"
        self.handle = WorkerHandle()
        self._future: Any = None

    def start(self) -> None:
        loop = event_loop()
        self._future = asyncio.run_coroutine_threadsafe(self._produce(), loop)
        self._future.add_done_callback(lambda _f: self.handle._mark_done())

    # -- the producer coroutine ----------------------------------------------

    async def _deliver(self, out: Any, items: List[Any]) -> None:
        """Move *items* into the pipe's (threading) channel without ever
        blocking the loop: this worker is the channel's only producer,
        so free space observed under the lock cannot shrink before the
        zero-timeout put lands."""
        sent = 0
        while sent < len(items):
            if out.capacity:
                free = out.capacity - len(out)
                if free <= 0:
                    if self.pipe._cancelled:
                        raise ChannelClosedError("consumer cancelled")
                    await asyncio.sleep(_BACKPRESSURE_SLICE)
                    continue
                chunk = items[sent : sent + free]
            else:
                chunk = items[sent:]
            out.put_many(chunk, timeout=0)
            sent += len(chunk)

    async def _flush(self, buffer: List[Any]) -> None:
        """Deliver a coalesced batch and keep the pipe's batching
        counters/events identical to the thread tier's."""
        pipe = self.pipe
        await self._deliver(pipe.out, buffer)
        pipe._flushes += 1
        pipe._batched_items += len(buffer)
        if lifecycle_enabled():
            pipe._emit(
                EventKind.BATCH,
                {"size": len(buffer), "queued": len(pipe.out)},
            )
        buffer.clear()

    async def _produce(self) -> None:
        pipe = self.pipe
        out = pipe.out
        coexpr = pipe.coexpr
        deadline = pipe.deadline
        batch = pipe.batch
        max_linger = pipe.max_linger
        buffer: List[Any] = []
        oldest = 0.0
        try:
            while not pipe._cancelled:
                if deadline is not None and deadline.expired():
                    raise pipe._deadline_error("producer")
                value = coexpr.activate()
                if value is FAIL:
                    break
                if batch > 1:
                    if not buffer:
                        oldest = time.monotonic()
                    buffer.append(value)
                    # Activations are atomic on the loop, so this
                    # post-activation age check is the linger flusher
                    # (see the module docstring's cooperative caveat).
                    if len(buffer) >= batch or (
                        max_linger is not None
                        and time.monotonic() - oldest >= max_linger
                    ):
                        await self._flush(buffer)
                else:
                    await self._deliver(out, [value])
                await asyncio.sleep(0)  # per-item fairness across workers
            if buffer:  # flush-on-exhaustion: no result is stranded
                await self._flush(buffer)
        except ChannelClosedError:
            pass  # the consumer cancelled the pipe; just exit
        except asyncio.CancelledError:
            pass  # killed (scheduler shutdown / pipe cancel): just exit
        except Exception as error:  # noqa: BLE001 - forwarded to consumer
            pipe._errored = True
            try:
                if buffer:
                    await self._flush(buffer)  # data before the error
                out.put_error(error)  # unthrottled: never blocks
            except ChannelClosedError:
                pass  # cancelled while reporting: consumer is gone
        finally:
            out.close()
            if pipe._cancelled or pipe._errored:
                pipe._cancel_upstream()
            self.scheduler.untrack_session(self)

    # -- teardown --------------------------------------------------------------

    def terminate(self) -> None:
        """The :meth:`Pipe.cancel` hook: cancel the task (idempotent).

        The loop delivers ``CancelledError`` into the coroutine, whose
        ``finally`` closes the channel and untracks the session — same
        unwind order as a thread worker seeing its channel closed.
        """
        future = self._future
        if future is not None:
            future.cancel()

    # -- worker/session protocol (scheduler accounting) ------------------------

    def kill(self) -> None:
        """Scheduler-shutdown hook: cancel the pending task now."""
        self.terminate()

    def join(self, timeout: float | None = None) -> bool:
        return self.handle.join(timeout)

    def is_alive(self) -> bool:
        return self.handle.is_alive()


def async_unsafe_reason(pipe: Any) -> str | None:
    """Why *pipe*'s body cannot run on the shared loop (None = it can).

    The async tier's half of the degradation rules, the cooperative
    analogue of :func:`repro.coexpr.proc.body_portability_reason`: the
    loop runs one activation at a time, so a body that performs a
    *blocking* take inside its activation freezes every other coroutine
    on the loop.  If the channel it blocks on is itself fed by a task on
    that loop — a stage consuming an upstream async pipe — the producer
    can never run and the pipeline deadlocks outright; if the feeder is
    a thread, the loop is merely starved for the stream's whole
    lifetime, which breaks the "thousands of pipes share one loop"
    contract just as surely.  Either way the stage cannot live on the
    loop: it degrades to the thread backend with a ``DEGRADED`` monitor
    event, exactly as a channel-fed stage refuses the process boundary.

    Pure sources — bodies whose environment holds only plain values —
    run on the loop; that is the tier's sweet spot.
    """
    from .channel import Channel
    from .future import Future, MVar
    from .pipe import Pipe
    from .supervision import SupervisedPipe

    blocking = (Pipe, SupervisedPipe, Future, MVar, Channel)
    upstream = getattr(pipe, "upstream", None)
    if upstream is not None and isinstance(upstream, blocking):
        return "stage is fed by an in-process pipe (blocking take would starve the loop)"
    for value in pipe.coexpr._env:
        if isinstance(value, blocking):
            return (
                f"environment references a blocking {type(value).__name__}"
                " (its take would starve the loop)"
            )
    return None


def start_async_worker(pipe: Any, scheduler: Any) -> AsyncWorker | None:
    """Run *pipe*'s body as a task on the shared event loop.

    Returns a running :class:`AsyncWorker` (task scheduled, session
    tracked by *scheduler*) — or None after emitting a ``DEGRADED``
    monitor event when :func:`async_unsafe_reason` finds a blocking
    dependency, in which case the caller falls back to the thread
    backend (the same contract as the process and remote hooks).
    Scheduler shutdown is **not** degradation: a submit racing shutdown
    propagates :class:`~repro.errors.SchedulerShutdownError`, exactly as
    the thread backend does (the session registration is the gate, and
    it happens *before* the task exists, so the race leaks nothing).
    """
    reason = async_unsafe_reason(pipe)
    if reason is not None:
        pipe._degraded = reason
        if lifecycle_enabled():
            emit_lifecycle(
                Event(EventKind.DEGRADED, f"pipe:{pipe.coexpr.name}", 0, reason)
            )
        return None
    worker = AsyncWorker(pipe, scheduler)
    scheduler.track_session(worker)  # raises after shutdown
    try:
        worker.start()
    except BaseException:
        scheduler.untrack_session(worker)
        raise
    if lifecycle_enabled():
        emit_lifecycle(
            Event(
                EventKind.ASYNC_SESSION,
                f"pipe:{pipe.coexpr.name}",
                0,
                {"transport": "loop", "name": pipe.coexpr.name},
            )
        )
    return worker
