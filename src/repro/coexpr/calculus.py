"""The calculus for concurrent generators (paper Figure 1).

============  =======================================================
``<> e``      :func:`first_class` — lift an expression to an iterator
``|<> e``     :func:`coexpr` — co-expression shadowing the locals
``|> e``      :func:`pipe` — generator proxy in a separate thread
``@ c``       :func:`activate` — step one iteration
``! c``       :func:`promote` — back to a generator
``^ c``       :func:`refresh` — restart with a fresh environment copy
============  =======================================================

These are the host-facing spellings; embedded Junicon code writes the
operators themselves and the transformer emits calls into the same
machinery.  Each function accepts the natural host values — iterator
nodes, Python generators/factories, collections — so the calculus is
usable from plain Python without the language front-end.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..runtime.failure import FAIL
from ..runtime.iterator import IconGenerator, IconIterator, as_iterator
from ..runtime.promote import IconPromote, activate_value, promote_value
from .coexpression import CoExpression, coexpr_of
from .future import Future
from .pipe import Pipe
from .scheduler import PipeScheduler


def first_class(expr: Any) -> IconIterator:
    """``<>e`` — reify an expression as an explicitly-stepped iterator.

    ``expr`` may be an existing node (returned as-is), a zero-argument
    factory of an iterable (each restart re-invokes it), or a plain value
    (singleton).  Step the result with :func:`activate`.
    """
    if isinstance(expr, IconIterator):
        return expr
    if callable(expr):
        return IconGenerator(expr)
    return as_iterator(expr)


def coexpr(
    body: Any,
    env: Callable[[], Sequence[Any]] | Sequence[Any] | None = None,
    *,
    name: str = "",
) -> CoExpression:
    """``|<>e`` — a co-expression over *body* with a shadowed environment.

    ``body`` is a factory: called with the snapshot of *env* (a sequence
    of local values, or a callable producing one, evaluated immediately)
    it must return the body iterable.  With no *env* the body factory
    takes no arguments — shadowing then relies on the closure having
    already copied what it needs.
    """
    if env is None:
        return coexpr_of(body, name=name)
    getter = env if callable(env) else (lambda: env)  # type: ignore[misc]
    return CoExpression(body, getter, name=name)


def pipe(
    expr: Any,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    batch: int = 1,
    max_linger: float | None = None,
) -> Pipe:
    """``|>e`` — run *expr* in its own thread behind a blocking queue.

    ``capacity`` bounds the output queue (0 = unbounded); a bound
    throttles the producer.  The worker starts on first use (or call
    ``.start()``).  ``batch`` > 1 moves results through the queue in
    coalesced slices (see :class:`~repro.coexpr.pipe.Pipe`).
    """
    return Pipe(
        expr, capacity=capacity, scheduler=scheduler, batch=batch, max_linger=max_linger
    )


def future(expr: Any, scheduler: PipeScheduler | None = None) -> Future:
    """A future — the singleton-pipe special case of ``|>``."""
    return Future(expr, scheduler=scheduler)


def activate(target: Any, transmit: Any = None) -> Any:
    """``@c`` (or ``v @ c``) — step one iteration; result or :data:`FAIL`."""
    return activate_value(target, transmit)


def promote(target: Any) -> IconIterator:
    """``!c`` — promote a first-class entity back to a generator node.

    Works on co-expressions, pipes, futures, iterator nodes, collections,
    strings, files — everything the runtime's ``!`` accepts.
    """
    if isinstance(target, IconIterator):
        return target
    return IconPromote(as_iterator(target))


def results(target: Any) -> Iterator[Any]:
    """Host-facing ``!c``: a plain Python iterator over dereferenced
    results (element variables collapse to their values)."""
    from ..runtime.refs import deref

    for result in promote_value(target):
        yield deref(result)


def refresh(target: Any) -> Any:
    """``^c`` — restart with a new copy of the creation environment."""
    refresher = getattr(target, "refresh", None)
    if refresher is not None:
        return refresher()
    if isinstance(target, IconIterator):
        return target.restart()
    return target
