"""The wire protocol — one envelope vocabulary for every pipe transport.

In-process, channel traffic is method calls (``put_many`` / ``put_error``
/ ``close``).  When the same traffic crosses an OS boundary each call
becomes a tagged tuple — an *envelope* — on a byte transport: an IPC
connection for process-backed pipes (:mod:`repro.coexpr.proc`) or a TCP
socket for remote pipes (:mod:`repro.net`).  This module is the single
definition of that vocabulary plus the two codecs every transport needs:

* **error encoding** — a producer exception as a transportable payload,
  preserving the ``__cause__`` chain and the traceback text (a remote
  crash should read like a local one);
* **socket framing** — length-prefixed pickle frames over a stream
  socket, timeout-safe (a read that times out mid-frame keeps its
  partial bytes and resumes cleanly).

Envelope ordering is the transport invariant every tier pins with tests:
data slices arrive in production order, an error never overtakes the
data produced before it, and a close terminates the stream.

**Trust model.**  Frames are pickles, and unpickling runs arbitrary
code — so a framer must only ever fully trust bytes from a peer the
application trusts (the client dialing a server it chose; a server
explicitly running client bodies with ``allow_spawn=True``).  A server
that does *not* execute client code constructs its framer with
``trusted=False``: frames are then decoded by a restricted unpickler
that refuses every global lookup, limiting envelopes to compositions
of primitive values (numbers, strings, bytes, bools, None, and
containers of them) and turning a hostile payload into a
:class:`FrameError` instead of code execution.
"""

from __future__ import annotations

import io
import pickle
import struct
import threading
import traceback
from typing import Any

from ..errors import PipeError

# ---------------------------------------------------------------------------
# Envelope kinds.  Server/worker -> consumer:
# ---------------------------------------------------------------------------

#: ``(WIRE_DATA, [values])`` — a batched slice; lands as ``Channel.put_many``.
WIRE_DATA = "data"
#: ``(WIRE_ERROR, payload)`` — a producer crash; lands as ``Channel.put_error``.
WIRE_ERROR = "error"
#: ``(WIRE_CLOSE,)`` — producer exhaustion; lands as ``Channel.close``.
WIRE_CLOSE = "close"
#: ``(WIRE_BEAT, monotonic_time)`` — liveness only; never enters the channel.
WIRE_BEAT = "beat"
#: ``(WIRE_BUSY, retry_after)`` — admission control: the server is at
#: capacity and is closing instead of serving; dial again after
#: *retry_after* seconds.  Sent before any session exists, so it is the
#: one server->client envelope that can be the entire conversation.
WIRE_BUSY = "busy"

# ---------------------------------------------------------------------------
# Consumer -> server kinds (the network tier's request/control channel).
# ---------------------------------------------------------------------------

#: ``(WIRE_SPAWN, {...})`` — run a pickled ``(factory, env)`` body remotely.
WIRE_SPAWN = "spawn"
#: ``(WIRE_CALL, {...})`` — run a factory the server registered by name.
WIRE_CALL = "call"
#: ``(WIRE_CREDIT, n | None)`` — grant the sender *n* more items (None =
#: unlimited; the flow-control half of a bounded channel over a socket).
WIRE_CREDIT = "credit"
#: ``(WIRE_CANCEL,)`` — the consumer abandoned the stream; stop producing.
WIRE_CANCEL = "cancel"
#: ``(WIRE_DEADLINE, remaining_seconds)`` — the stream's budget.  Always
#: *remaining* time, never an absolute timestamp: monotonic clocks have
#: per-process epochs and wall clocks are host-local, so the receiver
#: re-anchors the budget against its own clock on receipt (see
#: :mod:`repro.coexpr.deadline`).  Primitive payload, so it survives the
#: restricted unpickler of an ``allow_spawn=False`` server.
WIRE_DEADLINE = "deadline"

# ---------------------------------------------------------------------------
# Control-channel kinds (the cluster tier's membership vocabulary).  A
# connection whose *first* envelope is one of these becomes a control
# session: no body runs, the server just answers.  Payloads are strictly
# primitive — a health probe must work against an ``allow_spawn=False``
# server, whose restricted unpickler refuses anything richer.
# ---------------------------------------------------------------------------

#: ``(WIRE_PING, nonce)`` — a health probe.  Any live server answers with
#: a :data:`WIRE_PONG` echoing the nonce; a server at capacity answers
#: the whole *connection* with :data:`WIRE_BUSY` instead, which a prober
#: treats as alive (shedding is load, not death).
WIRE_PING = "ping"
#: ``(WIRE_PONG, nonce)`` — the probe reply.
WIRE_PONG = "pong"
#: ``(WIRE_PEERS, [[host, port, weight], ...])`` — one push-pull gossip
#: exchange: the sender's known fleet as a list of primitive triples;
#: the reply is the receiver's fleet (its own advertised address first).
#: Both sides merge what they learn.
WIRE_PEERS = "peers"


# ---------------------------------------------------------------------------
# Error encoding.
# ---------------------------------------------------------------------------

#: Longest ``__cause__`` chain shipped across a boundary.
_MAX_CAUSE_DEPTH = 8


def encode_error(error: BaseException, _depth: int = 0) -> dict:
    """An exception as a wire payload: pickled when possible, repr
    otherwise — with the ``__cause__`` chain and traceback text attached.

    Pickle alone loses both: ``BaseException.__reduce__`` carries only
    ``args`` (plus ``__dict__``), so a chained cause and the traceback
    silently vanish at the boundary.  They are encoded separately here
    and re-attached by :func:`decode_error`, so a consumer sees the same
    ``raise ... from ...`` chain a local producer would have raised.
    """
    payload: dict = {"cause": None, "traceback": None}
    tb = error.__traceback__
    if tb is not None:
        payload["traceback"] = "".join(traceback.format_tb(tb))
    cause = error.__cause__
    if cause is not None and cause is not error and _depth < _MAX_CAUSE_DEPTH:
        payload["cause"] = encode_error(cause, _depth + 1)
    try:
        payload["body"] = ("pickle", pickle.dumps(error))
    except Exception:  # noqa: BLE001 - anything unpicklable falls back
        payload["body"] = ("repr", type(error).__name__, repr(error))
    return payload


def decode_error(payload: dict) -> BaseException:
    """Rebuild a transported exception (repr fallback → PipeError).

    Re-attaches the decoded ``__cause__`` chain and stores the producer's
    traceback text as ``remote_traceback`` on the rebuilt exception.
    """
    body = payload["body"]
    if body[0] == "pickle":
        try:
            error: BaseException = pickle.loads(body[1])
        except Exception:  # noqa: BLE001 - corrupted payload
            error = PipeError("worker crashed (undecodable error payload)")
    else:
        error = PipeError(f"worker raised {body[1]}: {body[2]}")
    cause = payload.get("cause")
    if cause is not None:
        error.__cause__ = decode_error(cause)
    tb_text = payload.get("traceback")
    if tb_text:
        try:
            error.remote_traceback = tb_text  # type: ignore[attr-defined]
        except Exception:  # noqa: BLE001 - slotted exception classes
            pass
    return error


# ---------------------------------------------------------------------------
# Socket framing.
# ---------------------------------------------------------------------------

_HEADER = struct.Struct(">I")

#: Refuse frames beyond this size — a corrupted length prefix must not
#: make the reader try to allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024


class FrameError(PipeError):
    """The byte stream does not parse as a framed envelope."""


class _RestrictedUnpickler(pickle.Unpickler):
    """An unpickler that refuses every global lookup.

    Primitive values (numbers, strings, bytes, bools, None) and
    containers of them decode without ``find_class``; anything that
    needs a class or function — the code-execution surface of pickle —
    raises, which :meth:`SocketFramer.recv` turns into a
    :class:`FrameError`.
    """

    def find_class(self, module: str, name: str) -> Any:
        raise pickle.UnpicklingError(
            f"untrusted frame references global {module}.{name}; "
            "only primitive payloads are accepted"
        )


def _restricted_loads(frame: bytes) -> Any:
    return _RestrictedUnpickler(io.BytesIO(frame)).load()


class SocketFramer:
    """Length-prefixed pickle frames over a stream socket.

    ``send`` is thread-safe (one lock per framer: a beat thread and a
    data sender may share the socket).  ``recv`` is single-reader and
    **timeout-safe**: bytes received before a ``socket.timeout`` stay
    buffered, so the next call resumes the partial frame instead of
    desynchronizing the stream.  A clean peer close surfaces as
    :class:`EOFError`; torn connections raise :class:`OSError`.

    ``trusted=False`` decodes frames with a restricted unpickler that
    refuses global lookups (see the module docstring's trust model) —
    the mode for a peer whose code the application did not choose to
    run.
    """

    __slots__ = ("sock", "trusted", "_send_lock", "_buf", "_need")

    def __init__(self, sock: Any, trusted: bool = True) -> None:
        self.sock = sock
        self.trusted = trusted
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._need: int | None = None

    def send(self, envelope: tuple) -> None:
        """Frame and ship one envelope (blocking, thread-safe)."""
        payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        with self._send_lock:
            self.sock.sendall(_HEADER.pack(len(payload)) + payload)

    def buffered(self) -> bool:
        """True when a complete frame is already in the receive buffer.

        A reader that multiplexes with ``select`` must check this before
        waiting on the socket: bytes pulled by an earlier :meth:`recv`
        (e.g. a credit grant pipelined right behind a request) live in
        this buffer, not in the kernel — the socket will never poll
        readable for them.
        """
        if self._need is not None:
            return len(self._buf) >= self._need
        if len(self._buf) < _HEADER.size:
            return False
        (need,) = _HEADER.unpack(self._buf[: _HEADER.size])
        return len(self._buf) - _HEADER.size >= need

    def partial(self) -> bool:
        """True when a frame has started arriving but is incomplete.

        The liveness companion of :meth:`buffered`: these bytes live in
        user space, so the socket will never poll readable for them —
        a reader bounding mid-frame stalls must ask the framer, not
        select.
        """
        if self.buffered():
            return False
        return self._need is not None or bool(self._buf)

    def _extract(self) -> tuple | None:
        """Pop one complete envelope out of the buffer (None = partial)."""
        if self._need is None and len(self._buf) >= _HEADER.size:
            (self._need,) = _HEADER.unpack(self._buf[: _HEADER.size])
            del self._buf[: _HEADER.size]
            if self._need > MAX_FRAME:
                raise FrameError(f"oversized frame ({self._need} bytes)")
        if self._need is None or len(self._buf) < self._need:
            return None
        frame = bytes(self._buf[: self._need])
        del self._buf[: self._need]
        self._need = None
        loads = pickle.loads if self.trusted else _restricted_loads
        try:
            envelope = loads(frame)
        except Exception as error:  # noqa: BLE001 - corrupt frame
            raise FrameError(f"undecodable frame: {error!r}") from error
        if not isinstance(envelope, tuple) or not envelope:
            raise FrameError(f"malformed envelope: {envelope!r}")
        return envelope

    def _pull(self) -> None:
        """One ``recv`` call into the buffer; EOF raised as usual."""
        chunk = self.sock.recv(65536)
        if not chunk:
            if self._buf or self._need is not None:
                raise FrameError("connection closed mid-frame")
            raise EOFError("connection closed")
        self._buf += chunk

    def recv(self) -> tuple:
        """The next envelope; honors the socket's timeout setting.

        Raises ``socket.timeout`` (``TimeoutError``) with the partial
        frame preserved, :class:`EOFError` on an orderly close, and
        :class:`FrameError` on an unparseable stream.
        """
        while True:
            envelope = self._extract()
            if envelope is not None:
                return envelope
            self._pull()

    def try_recv(self) -> tuple | None:
        """One receive *step*: never blocks after a readable ``select``.

        Returns a buffered envelope if one is complete, else performs
        exactly one ``recv`` call (guaranteed not to block when select
        just reported the socket readable) and returns the envelope it
        completed — or None while the frame is still partial.  A reader
        multiplexing with select uses this instead of :meth:`recv` so a
        peer that stalls mid-frame cannot pin the reading thread.
        """
        envelope = self._extract()
        if envelope is not None:
            return envelope
        self._pull()
        return self._extract()

    def close(self) -> None:
        """Close the underlying socket (idempotent, never raises)."""
        try:
            self.sock.close()
        except OSError:
            pass
