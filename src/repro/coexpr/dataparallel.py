"""Map-reduce built from concurrent generators (paper Figure 4).

The paper's Junicon ``DataParallel`` class::

    def chunk(e) { # Partition e into chunks
      chunk = [];
      while put(chunk, @e) do {
        if (*chunk >= chunkSize) then { suspend chunk; chunk = []; }};
      if (*chunk > 0) then { return chunk; };
    }
    def mapReduce(f,s,r,i) { # Map f over s and reduce with r
      var c, t, tasks = [];
      every (c = chunk(<>s)) do {
        t = |> { var x=i; every (x=r(x, f(!c) )); x };
        ((List) tasks)::add(t);
      };
      suspend ! (! tasks);
    }

This module is the host-level equivalent: chunk a source, spawn one pipe
per chunk that maps ``f`` over the chunk's elements and folds with ``r``,
then generate the per-chunk results *in order* ("subtly different from
conventional map-reduce in that it enforces ordering between the results
of the partitioned threads").

The **data-parallel** variant of Section VII (:meth:`DataParallel.map_flat`)
differs "only in performing summation over the sequence returned from
flattening the chunks, thus splitting out the reduction and effecting
serialization": the pipes only map; the caller reduces serially.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List

from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator
from .coexpression import CoExpression
from .deadline import deadline_from
from .pipe import Pipe
from .scheduler import PipeScheduler


def apply_mapped(fn: Callable[[Any], Any], value: Any) -> Iterator[Any]:
    """Apply a map function with Icon invocation semantics.

    Generator functions (Junicon methods, Python generator functions) have
    every result generated; a plain function contributes its single result,
    and :data:`FAIL` means no result.
    """
    result = fn(value)
    if isinstance(result, IconIterator):
        yield from result
        return
    if hasattr(result, "__next__"):
        yield from result
        return
    if result is not FAIL:
        yield result


def iter_source(source: Any) -> Iterator[Any]:
    """Normalize a source: iterable, iterator node, co-expression, pipe,
    or zero-argument factory of any of those."""
    if callable(source) and not isinstance(source, IconIterator):
        source = source()
    if isinstance(source, IconIterator):
        return iter(source)
    hook = getattr(source, "icon_promote", None)
    if hook is not None:
        return hook()
    return iter(source)


# Module-level task bodies (not closures) so the process and remote
# backends can ship them by reference; the co-expression env carries the
# chunk and the map/reduce parameters.

def _fold_chunk(
    chunk: List[Any],
    fn: Callable[[Any], Any],
    reducer: Callable[[Any, Any], Any],
    initial: Any,
) -> Iterator[Any]:
    accumulator = initial
    for value in chunk:
        for mapped in apply_mapped(fn, value):
            accumulator = reducer(accumulator, mapped)
    yield accumulator


def _flat_chunk(chunk: List[Any], fn: Callable[[Any], Any]) -> Iterator[Any]:
    for value in chunk:
        yield from apply_mapped(fn, value)


class DataParallel:
    """Chunked map-reduce over pipes (the paper's ``DataParallel``)."""

    def __init__(
        self,
        chunk_size: int = 1000,
        capacity: int = 0,
        scheduler: PipeScheduler | None = None,
        max_pending: int | None = None,
        batch: int = 1,
        max_linger: float | None = None,
        backend: str = "thread",
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        mp_context: Any = None,
        remote_address: Any = None,
        deadline: Any = None,
    ) -> None:
        """``chunk_size`` elements per task (Figure 4 uses 1000);
        ``capacity`` bounds each task pipe's output queue; ``max_pending``
        (host extension) caps in-flight task pipes — the paper's version
        spawns one per chunk up front, which is ``max_pending=None``.
        ``batch``/``max_linger`` turn on batched transport for every task
        pipe (see :class:`~repro.coexpr.pipe.Pipe`): mostly useful for
        :meth:`map_flat`, whose tasks stream many elements per chunk —
        :meth:`map_reduce` tasks emit a single fold each, so there is
        nothing to coalesce.

        ``backend="process"`` runs each chunk task in its own child
        process — chunks are self-contained snapshots, so this is the
        first *GIL-free* path through the map-reduce patterns: CPU-bound
        map functions genuinely parallelize, and a chunk worker that
        hard-crashes surfaces :class:`~repro.errors.PipeWorkerLost` on
        its heartbeat (watchdog knobs as on :class:`Pipe`) instead of
        hanging the ordered drain.

        ``backend="remote"`` ships each chunk task to the generator
        server at ``remote_address`` instead of a local child — the
        chunks are the same self-contained snapshots, so the shape that
        isolates cleanly also distributes cleanly; a dead connection
        surfaces :class:`~repro.errors.PipeConnectionLost`.

        ``deadline`` (seconds or a shared
        :class:`~repro.coexpr.deadline.Deadline`) bounds the whole run:
        every task pipe shares the one budget, an expired budget
        short-circuits further spawns, and an expired in-flight task
        raises :class:`~repro.errors.PipeDeadlineExceeded` through the
        ordered drain."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 or None")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if backend not in ("thread", "process", "remote"):
            raise ValueError("backend must be 'thread', 'process', or 'remote'")
        self.chunk_size = chunk_size
        self.capacity = capacity
        self.scheduler = scheduler
        self.max_pending = max_pending
        self.batch = batch
        self.max_linger = max_linger
        self.backend = backend
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.mp_context = mp_context
        self.remote_address = remote_address
        # Normalized once: every task pipe shares the ONE budget.
        self.deadline = deadline_from(deadline)

    # -- Figure 4: chunk -------------------------------------------------------

    def chunk(self, source: Any) -> Iterator[List[Any]]:
        """Partition *source* into lists of at most ``chunk_size``."""
        block: List[Any] = []
        for value in iter_source(source):
            block.append(value)
            if len(block) >= self.chunk_size:
                yield block
                block = []
        if block:
            yield block

    # -- Figure 4: mapReduce ---------------------------------------------------

    def map_reduce(
        self,
        fn: Callable[[Any], Any],
        source: Any,
        reducer: Callable[[Any, Any], Any],
        initial: Any,
        backend: str | None = None,
    ) -> Iterator[Any]:
        """Map *fn* over each chunk in its own pipe, folding with
        *reducer* from *initial*; generate the chunk results in order.

        *backend* overrides the instance backend for this call:
        ``"process"`` folds every chunk in a crash-isolated child,
        GIL-free (the whole fold ships one accumulator back, so IPC
        volume is minimal — the best-suited shape for process tasks).
        """
        yield from self._run_tasks(
            _fold_chunk, (fn, reducer, initial), source, backend
        )

    # -- Section VII: the data-parallel (serialized reduction) variant ---------

    def map_flat(
        self,
        fn: Callable[[Any], Any],
        source: Any,
        backend: str | None = None,
    ) -> Iterator[Any]:
        """Map *fn* over chunks in parallel and flatten results in order;
        the reduction is left to the (serial) consumer."""
        yield from self._run_tasks(_flat_chunk, (fn,), source, backend)

    def reduce(
        self,
        fn: Callable[[Any], Any],
        source: Any,
        reducer: Callable[[Any, Any], Any],
        initial: Any,
        backend: str | None = None,
    ) -> Any:
        """Convenience: fold the ordered chunk results of
        :meth:`map_reduce` into a single value.

        Correct whenever *initial* is an identity of *reducer* (sums from
        0, concatenations from empty) — the usual map-reduce contract.
        """
        accumulator = initial
        for value in self.map_reduce(
            fn, source, reducer, initial=initial, backend=backend
        ):
            accumulator = reducer(accumulator, value)
        return accumulator

    # -- shared driver ----------------------------------------------------------

    def _spawn(
        self,
        task_body: Callable[..., Iterator[Any]],
        chunk: List[Any],
        extra: tuple,
        backend: str,
    ) -> Pipe:
        coexpr = CoExpression(
            task_body, lambda: (chunk,) + extra, name="mapreduce-task"
        )
        return Pipe(
            coexpr,
            capacity=self.capacity,
            scheduler=self.scheduler,
            batch=self.batch,
            max_linger=self.max_linger,
            backend=backend,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            mp_context=self.mp_context,
            remote_address=self.remote_address,
            deadline=self.deadline,
        ).start()

    def _run_tasks(
        self,
        task_body: Callable[..., Iterator[Any]],
        extra: tuple,
        source: Any,
        backend: str | None = None,
    ) -> Iterator[Any]:
        backend = backend if backend is not None else self.backend
        if backend not in ("thread", "process", "remote"):
            raise ValueError("backend must be 'thread', 'process', or 'remote'")
        # Cancellation propagates to siblings: if the drain stops early —
        # one task raised, or the consumer abandoned the generator — every
        # outstanding task pipe is cancelled, so no chunk worker is left
        # blocked on a bounded full channel.
        if self.max_pending is None:
            # The paper's shape: spawn a task per chunk, then drain in order.
            tasks = [
                self._spawn(task_body, chunk, extra, backend)
                for chunk in self.chunk(source)
            ]
            done = 0
            try:
                for task in tasks:
                    yield from task.iterate()
                    done += 1
            finally:
                for task in tasks[done:]:
                    task.cancel()
            return
        # Bounded-pending variant: a sliding window of live tasks.
        window: List[Pipe] = []
        try:
            for chunk in self.chunk(source):
                window.append(self._spawn(task_body, chunk, extra, backend))
                if len(window) >= self.max_pending:
                    yield from window.pop(0).iterate()
            while window:
                yield from window.pop(0).iterate()
        finally:
            for task in window:
                task.cancel()


def map_reduce(
    fn: Callable[[Any], Any],
    source: Any,
    reducer: Callable[[Any, Any], Any],
    initial: Any,
    chunk_size: int = 1000,
    **kwargs: Any,
) -> Iterator[Any]:
    """Functional shorthand for ``DataParallel(...).map_reduce(...)``."""
    return DataParallel(chunk_size, **kwargs).map_reduce(fn, source, reducer, initial)
