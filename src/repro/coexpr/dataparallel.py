"""Map-reduce built from concurrent generators (paper Figure 4).

The paper's Junicon ``DataParallel`` class::

    def chunk(e) { # Partition e into chunks
      chunk = [];
      while put(chunk, @e) do {
        if (*chunk >= chunkSize) then { suspend chunk; chunk = []; }};
      if (*chunk > 0) then { return chunk; };
    }
    def mapReduce(f,s,r,i) { # Map f over s and reduce with r
      var c, t, tasks = [];
      every (c = chunk(<>s)) do {
        t = |> { var x=i; every (x=r(x, f(!c) )); x };
        ((List) tasks)::add(t);
      };
      suspend ! (! tasks);
    }

This module is the host-level equivalent: chunk a source, spawn one pipe
per chunk that maps ``f`` over the chunk's elements and folds with ``r``,
then generate the per-chunk results *in order* ("subtly different from
conventional map-reduce in that it enforces ordering between the results
of the partitioned threads").

The **data-parallel** variant of Section VII (:meth:`DataParallel.map_flat`)
differs "only in performing summation over the sequence returned from
flattening the chunks, thus splitting out the reduction and effecting
serialization": the pipes only map; the caller reduces serially.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List

from ..errors import PipeConnectionLost
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator
from .coexpression import CoExpression
from .deadline import deadline_from
from .pipe import Pipe
from .scheduler import PipeScheduler


def apply_mapped(fn: Callable[[Any], Any], value: Any) -> Iterator[Any]:
    """Apply a map function with Icon invocation semantics.

    Generator functions (Junicon methods, Python generator functions) have
    every result generated; a plain function contributes its single result,
    and :data:`FAIL` means no result.
    """
    result = fn(value)
    if isinstance(result, IconIterator):
        yield from result
        return
    if hasattr(result, "__next__"):
        yield from result
        return
    if result is not FAIL:
        yield result


def iter_source(source: Any) -> Iterator[Any]:
    """Normalize a source: iterable, iterator node, co-expression, pipe,
    or zero-argument factory of any of those."""
    if callable(source) and not isinstance(source, IconIterator):
        source = source()
    if isinstance(source, IconIterator):
        return iter(source)
    hook = getattr(source, "icon_promote", None)
    if hook is not None:
        return hook()
    return iter(source)


# Module-level task bodies (not closures) so the process and remote
# backends can ship them by reference; the co-expression env carries the
# chunk and the map/reduce parameters.

def _fold_chunk(
    chunk: List[Any],
    fn: Callable[[Any], Any],
    reducer: Callable[[Any, Any], Any],
    initial: Any,
) -> Iterator[Any]:
    accumulator = initial
    for value in chunk:
        for mapped in apply_mapped(fn, value):
            accumulator = reducer(accumulator, mapped)
    yield accumulator


def _flat_chunk(chunk: List[Any], fn: Callable[[Any], Any]) -> Iterator[Any]:
    for value in chunk:
        yield from apply_mapped(fn, value)


class DataParallel:
    """Chunked map-reduce over pipes (the paper's ``DataParallel``)."""

    def __init__(
        self,
        chunk_size: int = 1000,
        capacity: int = 0,
        scheduler: PipeScheduler | None = None,
        max_pending: int | None = None,
        batch: int = 1,
        max_linger: float | None = None,
        backend: str = "thread",
        heartbeat_interval: float | None = None,
        heartbeat_timeout: float | None = None,
        mp_context: Any = None,
        remote_address: Any = None,
        deadline: Any = None,
    ) -> None:
        """``chunk_size`` elements per task (Figure 4 uses 1000);
        ``capacity`` bounds each task pipe's output queue; ``max_pending``
        (host extension) caps in-flight task pipes — the paper's version
        spawns one per chunk up front, which is ``max_pending=None``.
        ``batch``/``max_linger`` turn on batched transport for every task
        pipe (see :class:`~repro.coexpr.pipe.Pipe`): mostly useful for
        :meth:`map_flat`, whose tasks stream many elements per chunk —
        :meth:`map_reduce` tasks emit a single fold each, so there is
        nothing to coalesce.

        ``backend="process"`` runs each chunk task in its own child
        process — chunks are self-contained snapshots, so this is the
        first *GIL-free* path through the map-reduce patterns: CPU-bound
        map functions genuinely parallelize, and a chunk worker that
        hard-crashes surfaces :class:`~repro.errors.PipeWorkerLost` on
        its heartbeat (watchdog knobs as on :class:`Pipe`) instead of
        hanging the ordered drain.

        ``backend="remote"`` ships each chunk task to the generator
        server at ``remote_address`` instead of a local child — the
        chunks are the same self-contained snapshots, so the shape that
        isolates cleanly also distributes cleanly; a dead connection
        surfaces :class:`~repro.errors.PipeConnectionLost`.

        ``deadline`` (seconds or a shared
        :class:`~repro.coexpr.deadline.Deadline`) bounds the whole run:
        every task pipe shares the one budget, an expired budget
        short-circuits further spawns, and an expired in-flight task
        raises :class:`~repro.errors.PipeDeadlineExceeded` through the
        ordered drain."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 or None")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if backend not in ("thread", "process", "remote", "async"):
            raise ValueError(
                "backend must be 'thread', 'process', 'remote', or 'async'"
            )
        self.chunk_size = chunk_size
        self.capacity = capacity
        self.scheduler = scheduler
        self.max_pending = max_pending
        self.batch = batch
        self.max_linger = max_linger
        self.backend = backend
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.mp_context = mp_context
        if remote_address is not None:
            # Normalized once (list -> ServerPool): every chunk task —
            # and every steal respawn — shares the one pool, so a chunk
            # re-run after a replica death is routed around the corpse.
            from ..net.cluster import normalize_remote_address

            remote_address = normalize_remote_address(remote_address)
        self.remote_address = remote_address
        # Normalized once: every task pipe shares the ONE budget.
        self.deadline = deadline_from(deadline)

    # -- Figure 4: chunk -------------------------------------------------------

    def chunk(self, source: Any) -> Iterator[List[Any]]:
        """Partition *source* into lists of at most ``chunk_size``."""
        block: List[Any] = []
        for value in iter_source(source):
            block.append(value)
            if len(block) >= self.chunk_size:
                yield block
                block = []
        if block:
            yield block

    # -- Figure 4: mapReduce ---------------------------------------------------

    def map_reduce(
        self,
        fn: Callable[[Any], Any],
        source: Any,
        reducer: Callable[[Any, Any], Any],
        initial: Any,
        backend: str | None = None,
    ) -> Iterator[Any]:
        """Map *fn* over each chunk in its own pipe, folding with
        *reducer* from *initial*; generate the chunk results in order.

        *backend* overrides the instance backend for this call:
        ``"process"`` folds every chunk in a crash-isolated child,
        GIL-free (the whole fold ships one accumulator back, so IPC
        volume is minimal — the best-suited shape for process tasks).
        """
        yield from self._run_tasks(
            _fold_chunk, (fn, reducer, initial), source, backend
        )

    # -- Section VII: the data-parallel (serialized reduction) variant ---------

    def map_flat(
        self,
        fn: Callable[[Any], Any],
        source: Any,
        backend: str | None = None,
    ) -> Iterator[Any]:
        """Map *fn* over chunks in parallel and flatten results in order;
        the reduction is left to the (serial) consumer."""
        yield from self._run_tasks(_flat_chunk, (fn,), source, backend)

    def reduce(
        self,
        fn: Callable[[Any], Any],
        source: Any,
        reducer: Callable[[Any, Any], Any],
        initial: Any,
        backend: str | None = None,
    ) -> Any:
        """Convenience: fold the ordered chunk results of
        :meth:`map_reduce` into a single value.

        Correct whenever *initial* is an identity of *reducer* (sums from
        0, concatenations from empty) — the usual map-reduce contract.
        """
        accumulator = initial
        for value in self.map_reduce(
            fn, source, reducer, initial=initial, backend=backend
        ):
            accumulator = reducer(accumulator, value)
        return accumulator

    # -- shared driver ----------------------------------------------------------

    def _spawn(
        self,
        task_body: Callable[..., Iterator[Any]],
        chunk: List[Any],
        extra: tuple,
        backend: str,
        name: str = "mapreduce-task",
    ) -> Pipe:
        coexpr = CoExpression(task_body, lambda: (chunk,) + extra, name=name)
        return Pipe(
            coexpr,
            capacity=self.capacity,
            scheduler=self.scheduler,
            batch=self.batch,
            max_linger=self.max_linger,
            backend=backend,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            mp_context=self.mp_context,
            remote_address=self.remote_address,
            deadline=self.deadline,
        ).start()

    def _pool(self, backend: str) -> Any:
        """The ServerPool routing this run's tasks (None when the run is
        single-server, local, or not remote at all)."""
        if backend != "remote":
            return None
        pool = self.remote_address
        return pool if hasattr(pool, "dial_candidates") else None

    def _task_name(self, index: int, backend: str) -> str:
        # Pooled tasks need distinct route keys: under one shared name
        # every chunk would hash to the same replica, defeating the
        # fan-out.  Single-server and local runs keep the classic name.
        if self._pool(backend) is not None:
            return f"mapreduce-task-{index}"
        return "mapreduce-task"

    def _drain(
        self,
        holder: List[Any],
        task_body: Callable[..., Iterator[Any]],
        extra: tuple,
        backend: str,
    ) -> Iterator[Any]:
        """Drain one chunk task, stealing the chunk back on replica loss.

        ``holder`` is ``[pipe, chunk]`` — mutated in place on respawn so
        the caller's cancellation sweep always sees the live incarnation.
        A chunk stranded on a dead or shed replica
        (:class:`~repro.errors.PipeConnectionLost`, which covers
        :class:`~repro.errors.PipeServerBusy`) is *stolen*: re-spawned
        under the same route key, where pool suspicion routes it to the
        next live replica, and the replayed prefix is skipped so the
        consumer sees each result exactly once (chunk bodies are
        deterministic snapshots).  After ``2 * len(pool)`` steals the
        chunk falls back to the thread tier — the end of the
        replica → next replica → threads degradation order; the work is
        never silently dropped.
        """
        pool = self._pool(backend)
        if pool is None:
            yield from holder[0].iterate()
            return
        delivered = 0
        skip = 0
        steals = 0
        while True:
            task = holder[0]
            try:
                while True:
                    value = task.take()
                    if value is FAIL:
                        return
                    if skip:
                        skip -= 1
                        continue
                    delivered += 1
                    yield value
            except PipeConnectionLost as error:
                steals += 1
                fallback = steals > 2 * len(pool)
                pool.note_steal(
                    task.coexpr.name,
                    delivered,
                    reason=error.reason or str(error),
                    fallback=fallback,
                    # The replica the chunk was stranded on — feeds the
                    # per-address breakdown in Tracer.cluster_stats().
                    address=pool.last_address(task.coexpr.name),
                )
                task.cancel()
                holder[0] = self._spawn(
                    task_body,
                    holder[1],
                    extra,
                    "thread" if fallback else backend,
                    name=task.coexpr.name,
                )
                skip = delivered

    def _run_tasks(
        self,
        task_body: Callable[..., Iterator[Any]],
        extra: tuple,
        source: Any,
        backend: str | None = None,
    ) -> Iterator[Any]:
        backend = backend if backend is not None else self.backend
        if backend not in ("thread", "process", "remote", "async"):
            raise ValueError(
                "backend must be 'thread', 'process', 'remote', or 'async'"
            )
        # Cancellation propagates to siblings: if the drain stops early —
        # one task raised, or the consumer abandoned the generator — every
        # outstanding task pipe is cancelled, so no chunk worker is left
        # blocked on a bounded full channel.
        if self.max_pending is None:
            # The paper's shape: spawn a task per chunk, then drain in order.
            holders = [
                [self._spawn(task_body, chunk, extra, backend,
                             name=self._task_name(index, backend)), chunk]
                for index, chunk in enumerate(self.chunk(source))
            ]
            done = 0
            try:
                for holder in holders:
                    yield from self._drain(holder, task_body, extra, backend)
                    done += 1
            finally:
                for holder in holders[done:]:
                    holder[0].cancel()
            return
        # Bounded-pending variant: a sliding window of live tasks.
        window: List[List[Any]] = []
        try:
            for index, chunk in enumerate(self.chunk(source)):
                window.append(
                    [self._spawn(task_body, chunk, extra, backend,
                                 name=self._task_name(index, backend)), chunk]
                )
                if len(window) >= self.max_pending:
                    yield from self._drain(window.pop(0), task_body, extra, backend)
            while window:
                yield from self._drain(window.pop(0), task_body, extra, backend)
        finally:
            for holder in window:
                holder[0].cancel()


def map_reduce(
    fn: Callable[[Any], Any],
    source: Any,
    reducer: Callable[[Any, Any], Any],
    initial: Any,
    chunk_size: int = 1000,
    **kwargs: Any,
) -> Iterator[Any]:
    """Functional shorthand for ``DataParallel(...).map_reduce(...)``."""
    return DataParallel(chunk_size, **kwargs).map_reduce(fn, source, reducer, initial)
