"""Blocking channels — the communication substrate of pipes (III.B).

"A blocking channel, or blocking queue, has put and take operations that
wait until the queue of results is not full or not empty, respectively."
The paper uses Java's ``BlockingQueue``; this channel adds the two
behaviours a generator proxy needs on top of a plain bounded queue:

* **close** — the producer signals exhaustion (the co-expression failed);
  pending items still drain, after which ``take`` returns :data:`CLOSED`.
* **error propagation** — a producer-side exception travels the queue as a
  :class:`RaiseEnvelope` and re-raises in the consumer.

A *bounded* channel throttles its producer (the paper: "Bounding the
output queue buffer size can also be used to throttle a threaded
co-expression"); capacity 0 means unbounded.

Timeouts are **deadline-correct**: the deadline is computed once from
``time.monotonic()`` and each condition wait gets only the remaining
time, so the total wait never exceeds the requested timeout no matter
how many spurious wakeups occur.  Timeouts raise
:class:`~repro.errors.PipeTimeoutError` (a :class:`TimeoutError`
subclass).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Iterable, Iterator, List

from ..errors import ChannelClosedError, PipeTimeoutError


class _ClosedSentinel:
    _instance: "_ClosedSentinel | None" = None

    def __new__(cls) -> "_ClosedSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "CLOSED"


#: Returned by ``take`` once a channel is closed and drained.
CLOSED = _ClosedSentinel()


# The wire-envelope vocabulary lives in :mod:`repro.coexpr.wire` (it is
# shared with the socket transports of :mod:`repro.net`); re-exported
# here because the tags mirror this class's methods and both ends of
# every transport speak one protocol.
from .wire import WIRE_BEAT, WIRE_CLOSE, WIRE_DATA, WIRE_ERROR  # noqa: F401,E402


class RaiseEnvelope:
    """An exception in transit from producer to consumer."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


def deadline_of(timeout: float | None) -> float | None:
    """A monotonic deadline for *timeout* seconds from now (None = never)."""
    if timeout is None:
        return None
    return time.monotonic() + timeout


def remaining(deadline: float | None) -> float | None:
    """Seconds left until *deadline* (clamped at 0), or None if unbounded."""
    if deadline is None:
        return None
    return max(0.0, deadline - time.monotonic())


def deadline_wait(
    condition: threading.Condition, deadline: float | None, what: str
) -> None:
    """One deadline-aware condition wait; raises on an expired deadline.

    Shared by every blocking primitive (channels, M-vars) so that a
    timeout means "total wall-clock", not "per wakeup".
    """
    left = remaining(deadline)
    if left is not None and left <= 0:
        raise PipeTimeoutError(f"{what} timed out")
    if not condition.wait(left):
        raise PipeTimeoutError(f"{what} timed out")


class Channel:
    """A bounded blocking queue with close semantics.

    Thread-safe for any number of producers and consumers.  ``capacity``
    of 0 means unbounded.  Iterating a channel takes until it is drained.
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # -- producer side -------------------------------------------------------

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Block until space is available, then enqueue *item*.

        Raises :class:`ChannelClosedError` if the channel is (or becomes)
        closed while waiting — that is how a consumer-side ``close``
        unblocks and terminates a producer.

        *timeout* is a monotonic deadline over the wait for space; expiry
        raises :class:`PipeTimeoutError`.  The deadline semantics are
        uniform across capacities: a put that needs no wait (space is
        free, or the channel is unbounded) succeeds regardless of the
        deadline — an unbounded channel always has space, so its puts
        accept a timeout but can never expire on one.
        """
        deadline = deadline_of(timeout)
        with self._not_full:
            if self.capacity:
                while len(self._items) >= self.capacity and not self._closed:
                    deadline_wait(self._not_full, deadline, "Channel.put")
            if self._closed:
                raise ChannelClosedError("put on a closed channel")
            self._items.append(item)
            self._not_empty.notify()

    def put_many(self, items: Iterable[Any], timeout: float | None = None) -> int:
        """Enqueue every element of *items* under (at most) one lock
        acquisition per free-space window; returns the number enqueued.

        This is the batched-transport primitive: where a loop of
        :meth:`put` pays a mutex acquire and a condition-variable notify
        per element, ``put_many`` appends a whole slice while it holds
        the lock, waiting (deadline-correctly) only when a bounded
        channel fills up mid-batch.

        All-or-raise: on success the return value is ``len(items)``.  If
        the channel closes mid-batch, :class:`ChannelClosedError` is
        raised — elements enqueued before the close stay takeable, the
        rest are dropped (the consumer that closed has stopped reading).
        If the deadline expires mid-batch, :class:`PipeTimeoutError` is
        raised and the partial prefix likewise stays enqueued; FIFO order
        is preserved in every case.
        """
        batch = list(items)
        if not batch:
            return 0
        deadline = deadline_of(timeout)
        sent = 0
        with self._not_full:
            while True:
                if self._closed:
                    raise ChannelClosedError(
                        f"put_many on a closed channel ({sent}/{len(batch)} sent)"
                    )
                if self.capacity:
                    free = self.capacity - len(self._items)
                    if free <= 0:
                        deadline_wait(self._not_full, deadline, "Channel.put_many")
                        continue
                    chunk = batch[sent : sent + free]
                else:
                    chunk = batch[sent:]
                self._items.extend(chunk)
                sent += len(chunk)
                self._not_empty.notify(len(chunk))
                if sent >= len(batch):
                    return sent

    def put_error(self, error: BaseException) -> None:
        """Enqueue an exception to re-raise at the consumer.

        Error delivery bypasses the capacity bound: a crash report must
        never block behind a full queue (a producer that dies while its
        consumer is slow would otherwise hang forever trying to say so).
        """
        with self._lock:
            if self._closed:
                raise ChannelClosedError("put_error on a closed channel")
            self._items.append(RaiseEnvelope(error))
            self._not_empty.notify()

    def close(self) -> None:
        """Close the channel; queued items remain takeable.

        Idempotent.  Wakes every blocked producer (which then raises
        :class:`ChannelClosedError`) and consumer (which drains or gets
        :data:`CLOSED`).
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side -------------------------------------------------------

    def take(self, timeout: float | None = None) -> Any:
        """Block until an item is available; :data:`CLOSED` after drain.

        Re-raises a producer exception delivered via :meth:`put_error`.
        *timeout* is a monotonic deadline over the whole wait; expiry
        raises :class:`PipeTimeoutError`.
        """
        deadline = deadline_of(timeout)
        with self._not_empty:
            while not self._items and not self._closed:
                deadline_wait(self._not_empty, deadline, "Channel.take")
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
            else:
                return CLOSED
        if isinstance(item, RaiseEnvelope):
            raise item.error
        return item

    def take_many(self, max_n: int, timeout: float | None = None) -> Any:
        """Take up to *max_n* items under one lock acquisition.

        Blocks (deadline-correctly) until at least one item is available,
        then drains whatever is queued — up to *max_n* — without waiting
        for more: batching never adds consumer latency, it only amortizes
        the lock when the producer has run ahead.  Returns a non-empty
        list, or :data:`CLOSED` once the channel is closed and drained.

        Error envelopes are never reordered past the data that preceded
        them: the batch stops just before a queued
        :class:`RaiseEnvelope`, and an envelope at the head of the queue
        re-raises its exception (exactly as :meth:`take` would).
        """
        if max_n < 1:
            raise ValueError("max_n must be >= 1")
        deadline = deadline_of(timeout)
        with self._not_empty:
            while not self._items and not self._closed:
                deadline_wait(self._not_empty, deadline, "Channel.take_many")
            if not self._items:
                return CLOSED
            batch: List[Any] = []
            items = self._items
            while items and len(batch) < max_n:
                if isinstance(items[0], RaiseEnvelope):
                    if batch:
                        break  # deliver the preceding data first
                    envelope = items.popleft()
                    self._not_full.notify()
                    raise envelope.error
                batch.append(items.popleft())
            self._not_full.notify(len(batch))
        return batch

    def feed_wire(self, kind: str, payload: Any = None) -> bool:
        """Apply one wire envelope to this channel; the pump-thread hook.

        Maps :data:`WIRE_DATA` to :meth:`put_many`, :data:`WIRE_ERROR`
        to :meth:`put_error` (*payload* must already be an exception),
        and :data:`WIRE_CLOSE` to :meth:`close`; :data:`WIRE_BEAT` is a
        no-op (liveness is the transport's concern, not the queue's).
        Returns True once the stream is complete (a close envelope).
        """
        if kind == WIRE_DATA:
            self.put_many(payload)
        elif kind == WIRE_ERROR:
            self.put_error(payload)
        elif kind == WIRE_CLOSE:
            self.close()
            return True
        elif kind != WIRE_BEAT:
            raise ValueError(f"unknown wire envelope kind {kind!r}")
        return False

    def poll(self) -> Any:
        """Non-blocking take: an item, or :data:`CLOSED`, or None if empty."""
        with self._lock:
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
            elif self._closed:
                return CLOSED
            else:
                return None
        if isinstance(item, RaiseEnvelope):
            raise item.error
        return item

    # -- inspection ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        while True:
            item = self.take()
            if item is CLOSED:
                return
            yield item

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Channel(capacity={self.capacity}, queued={len(self)}, {state})"
