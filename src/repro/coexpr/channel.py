"""Blocking channels — the communication substrate of pipes (III.B).

"A blocking channel, or blocking queue, has put and take operations that
wait until the queue of results is not full or not empty, respectively."
The paper uses Java's ``BlockingQueue``; this channel adds the two
behaviours a generator proxy needs on top of a plain bounded queue:

* **close** — the producer signals exhaustion (the co-expression failed);
  pending items still drain, after which ``take`` returns :data:`CLOSED`.
* **error propagation** — a producer-side exception travels the queue as a
  :class:`RaiseEnvelope` and re-raises in the consumer.

A *bounded* channel throttles its producer (the paper: "Bounding the
output queue buffer size can also be used to throttle a threaded
co-expression"); capacity 0 means unbounded.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterator

from ..errors import ChannelClosedError


class _ClosedSentinel:
    _instance: "_ClosedSentinel | None" = None

    def __new__(cls) -> "_ClosedSentinel":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "CLOSED"


#: Returned by ``take`` once a channel is closed and drained.
CLOSED = _ClosedSentinel()


class RaiseEnvelope:
    """An exception in transit from producer to consumer."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class Channel:
    """A bounded blocking queue with close semantics.

    Thread-safe for any number of producers and consumers.  ``capacity``
    of 0 means unbounded.  Iterating a channel takes until it is drained.
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # -- producer side -------------------------------------------------------

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Block until space is available, then enqueue *item*.

        Raises :class:`ChannelClosedError` if the channel is (or becomes)
        closed while waiting — that is how a consumer-side ``close``
        unblocks and terminates a producer.
        """
        with self._not_full:
            if self.capacity:
                while len(self._items) >= self.capacity and not self._closed:
                    if not self._not_full.wait(timeout):
                        raise TimeoutError("Channel.put timed out")
            if self._closed:
                raise ChannelClosedError("put on a closed channel")
            self._items.append(item)
            self._not_empty.notify()

    def put_error(self, error: BaseException) -> None:
        """Enqueue an exception to re-raise at the consumer."""
        self.put(RaiseEnvelope(error))

    def close(self) -> None:
        """Close the channel; queued items remain takeable.

        Idempotent.  Wakes every blocked producer (which then raises
        :class:`ChannelClosedError`) and consumer (which drains or gets
        :data:`CLOSED`).
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # -- consumer side -------------------------------------------------------

    def take(self, timeout: float | None = None) -> Any:
        """Block until an item is available; :data:`CLOSED` after drain.

        Re-raises a producer exception delivered via :meth:`put_error`.
        """
        with self._not_empty:
            while not self._items and not self._closed:
                if not self._not_empty.wait(timeout):
                    raise TimeoutError("Channel.take timed out")
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
            else:
                return CLOSED
        if isinstance(item, RaiseEnvelope):
            raise item.error
        return item

    def poll(self) -> Any:
        """Non-blocking take: an item, or :data:`CLOSED`, or None if empty."""
        with self._lock:
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
            elif self._closed:
                return CLOSED
            else:
                return None
        if isinstance(item, RaiseEnvelope):
            raise item.error
        return item

    # -- inspection ----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        while True:
            item = self.take()
            if item is CLOSED:
                return
            yield item

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Channel(capacity={self.capacity}, queued={len(self)}, {state})"
