"""Thread management for pipes (paper V.D: "Thread creation and allocation
leverage Java's facilities for thread pool management and support for
multi-core execution").

A :class:`PipeScheduler` hands worker threads to pipes.  Two modes:

* **dedicated** (default) — one daemon thread per pipe.  Pipes are
  long-lived streamers that block on their output channel, so a pool of
  reusable workers mostly adds queueing latency; dedicated threads match
  what the JVM implementation effectively does for streaming stages.
  ``max_workers`` genuinely bounds thread creation: the semaphore is
  acquired *before* the thread is spawned, so ``submit`` blocks once the
  cap is reached instead of stacking up idle threads.
* **pooled** — a bounded pool with a semaphore cap, for workloads that
  spawn many short-lived pipes (the map-reduce chunk tasks); prevents
  unbounded thread creation.

The scheduler also owns the **leak-checked shutdown** story: every
dedicated thread it spawns is tracked until it exits, ``shutdown(wait=True)``
joins them, and :meth:`leaked` reports any survivors — the test suite's
per-test fixture asserts that list is empty.

The module-level default scheduler is what ``|>`` uses when no scheduler
is given; :func:`use_scheduler` swaps it (also usable as a context
manager), and the ablation benches use that to sweep worker counts.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, List

from ..errors import SchedulerShutdownError


class WorkerHandle:
    """A joinable handle on one submitted pipe body."""

    __slots__ = ("_thread", "_done")

    def __init__(self, thread: threading.Thread | None = None) -> None:
        self._thread = thread
        self._done = threading.Event()

    def _mark_done(self) -> None:
        self._done.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the body to finish; True if it has."""
        if self._thread is not None:
            self._thread.join(timeout)
            return not self._thread.is_alive()
        return self._done.wait(timeout if timeout is not None else None)

    def is_alive(self) -> bool:
        if self._thread is not None:
            return self._thread.is_alive()
        return not self._done.is_set()


class PipeScheduler:
    """Dispatches pipe worker bodies onto threads."""

    _ids = itertools.count(1)

    def __init__(self, max_workers: int | None = None, pooled: bool = False) -> None:
        """With ``pooled=True`` run bodies on a shared
        :class:`~concurrent.futures.ThreadPoolExecutor` of *max_workers*
        threads; otherwise spawn a dedicated daemon thread per body
        (max_workers then caps concurrent dedicated threads — ``submit``
        blocks at the cap, None = unlimited)."""
        self.pooled = pooled
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._gate = (
            threading.Semaphore(max_workers) if (max_workers and not pooled) else None
        )
        self._active = 0
        self._lock = threading.Lock()
        self._threads: set[threading.Thread] = set()
        self._shutdown = False

    def submit(self, body: Callable[[], None], name: str = "pipe") -> WorkerHandle:
        """Run *body* asynchronously; returns a joinable handle.

        In dedicated mode with ``max_workers`` set this blocks until a
        worker slot frees up (that is what bounds thread creation).
        Raises :class:`SchedulerShutdownError` after :meth:`shutdown`.
        """
        if self._shutdown:
            raise SchedulerShutdownError("submit on a shut-down PipeScheduler")
        if self.pooled:
            with self._lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers or 4,
                        thread_name_prefix="repro-pipe",
                    )
                pool = self._pool
            handle = WorkerHandle()
            pool.submit(self._run_pooled, body, handle)
            return handle
        if self._gate is not None:
            # Acquire *before* spawning: the cap bounds thread creation,
            # not just concurrent execution.
            self._gate.acquire()
        thread = threading.Thread(
            target=self._run_gated,
            args=(body,),
            name=f"repro-{name}-{next(self._ids)}",
            daemon=True,
        )
        with self._lock:
            if self._shutdown:
                if self._gate is not None:
                    self._gate.release()
                raise SchedulerShutdownError("submit on a shut-down PipeScheduler")
            self._threads.add(thread)
        thread.start()
        return WorkerHandle(thread)

    def _run_gated(self, body: Callable[[], None]) -> None:
        try:
            self._run(body)
        finally:
            if self._gate is not None:
                self._gate.release()
            with self._lock:
                self._threads.discard(threading.current_thread())

    def _run_pooled(self, body: Callable[[], None], handle: WorkerHandle) -> None:
        try:
            self._run(body)
        finally:
            handle._mark_done()

    def _run(self, body: Callable[[], None]) -> None:
        with self._lock:
            self._active += 1
        try:
            body()
        finally:
            with self._lock:
                self._active -= 1

    @property
    def active(self) -> int:
        """Number of currently running pipe bodies."""
        with self._lock:
            return self._active

    # -- lifecycle ------------------------------------------------------------

    def leaked(self, join_timeout: float = 0.0) -> List[threading.Thread]:
        """Dedicated worker threads that are still alive.

        With *join_timeout* > 0, gives stragglers that long (total) to
        exit before reporting them — the leak-check fixture uses a short
        grace period so threads mid-teardown are not false positives.
        """
        with self._lock:
            threads = [t for t in self._threads if t.is_alive()]
        if join_timeout > 0 and threads:
            deadline = time.monotonic() + join_timeout
            for thread in threads:
                thread.join(max(0.0, deadline - time.monotonic()))
            threads = [t for t in threads if t.is_alive()]
        return threads

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and (optionally) join in-flight workers.

        Idempotent and safe to call with pipes still running: their
        threads are daemons, so an expired *timeout* leaves them to die
        with the process rather than hanging the caller; :meth:`leaked`
        then reports them.  ``wait=False`` just flips the flag.
        """
        with self._lock:
            self._shutdown = True
            threads = list(self._threads)
            pool = self._pool
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
        if wait and threads:
            deadline = None if timeout is None else time.monotonic() + timeout
            for thread in threads:
                if deadline is None:
                    thread.join()
                else:
                    thread.join(max(0.0, deadline - time.monotonic()))


_default = PipeScheduler()
_default_lock = threading.Lock()


def default_scheduler() -> PipeScheduler:
    """The scheduler pipes use when none is passed explicitly."""
    return _default


def set_default_scheduler(scheduler: PipeScheduler) -> PipeScheduler:
    """Replace the process default; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, scheduler
    return previous


@contextlib.contextmanager
def use_scheduler(scheduler: PipeScheduler) -> Iterator[PipeScheduler]:
    """Temporarily install *scheduler* as the default."""
    previous = set_default_scheduler(scheduler)
    try:
        yield scheduler
    finally:
        set_default_scheduler(previous)
