"""Thread management for pipes (paper V.D: "Thread creation and allocation
leverage Java's facilities for thread pool management and support for
multi-core execution").

A :class:`PipeScheduler` hands worker threads to pipes.  Two modes:

* **dedicated** (default) — one daemon thread per pipe.  Pipes are
  long-lived streamers that block on their output channel, so a pool of
  reusable workers mostly adds queueing latency; dedicated threads match
  what the JVM implementation effectively does for streaming stages.
* **pooled** — a bounded pool with a semaphore cap, for workloads that
  spawn many short-lived pipes (the map-reduce chunk tasks); prevents
  unbounded thread creation.

The module-level default scheduler is what ``|>`` uses when no scheduler
is given; :func:`use_scheduler` swaps it (also usable as a context
manager), and the ablation benches use that to sweep worker counts.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator


class PipeScheduler:
    """Dispatches pipe worker bodies onto threads."""

    _ids = itertools.count(1)

    def __init__(self, max_workers: int | None = None, pooled: bool = False) -> None:
        """With ``pooled=True`` run bodies on a shared
        :class:`~concurrent.futures.ThreadPoolExecutor` of *max_workers*
        threads; otherwise spawn a dedicated daemon thread per body
        (max_workers then caps *concurrent* dedicated threads via a
        semaphore, None = unlimited)."""
        self.pooled = pooled
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._gate = (
            threading.Semaphore(max_workers) if (max_workers and not pooled) else None
        )
        self._active = 0
        self._lock = threading.Lock()

    def submit(self, body: Callable[[], None], name: str = "pipe") -> None:
        """Run *body* asynchronously; returns immediately."""
        if self.pooled:
            with self._lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers or 4,
                        thread_name_prefix="repro-pipe",
                    )
            self._pool.submit(self._run, body)
            return
        thread = threading.Thread(
            target=self._run_gated,
            args=(body,),
            name=f"repro-{name}-{next(self._ids)}",
            daemon=True,
        )
        thread.start()

    def _run_gated(self, body: Callable[[], None]) -> None:
        if self._gate is not None:
            self._gate.acquire()
        try:
            self._run(body)
        finally:
            if self._gate is not None:
                self._gate.release()

    def _run(self, body: Callable[[], None]) -> None:
        with self._lock:
            self._active += 1
        try:
            body()
        finally:
            with self._lock:
                self._active -= 1

    @property
    def active(self) -> int:
        """Number of currently running pipe bodies."""
        with self._lock:
            return self._active

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


_default = PipeScheduler()
_default_lock = threading.Lock()


def default_scheduler() -> PipeScheduler:
    """The scheduler pipes use when none is passed explicitly."""
    return _default


def set_default_scheduler(scheduler: PipeScheduler) -> PipeScheduler:
    """Replace the process default; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, scheduler
    return previous


@contextlib.contextmanager
def use_scheduler(scheduler: PipeScheduler) -> Iterator[PipeScheduler]:
    """Temporarily install *scheduler* as the default."""
    previous = set_default_scheduler(scheduler)
    try:
        yield scheduler
    finally:
        set_default_scheduler(previous)
