"""Thread management for pipes (paper V.D: "Thread creation and allocation
leverage Java's facilities for thread pool management and support for
multi-core execution").

A :class:`PipeScheduler` hands worker threads to pipes.  Two modes:

* **dedicated** (default) — one daemon thread per pipe.  Pipes are
  long-lived streamers that block on their output channel, so a pool of
  reusable workers mostly adds queueing latency; dedicated threads match
  what the JVM implementation effectively does for streaming stages.
  ``max_workers`` genuinely bounds thread creation: the semaphore is
  acquired *before* the thread is spawned, so ``submit`` blocks once the
  cap is reached instead of stacking up idle threads.
* **pooled** — a bounded pool with a semaphore cap, for workloads that
  spawn many short-lived pipes (the map-reduce chunk tasks); prevents
  unbounded thread creation.

The scheduler also owns the **leak-checked shutdown** story: every
dedicated thread it spawns is tracked until it exits, ``shutdown(wait=True)``
joins them, and :meth:`leaked` reports any survivors — the test suite's
per-test fixture asserts that list is empty.  Process-backed pipes
(:mod:`repro.coexpr.proc`) register their child processes here too
(:meth:`PipeScheduler.track_process`), so ``leaked()`` and ``shutdown()``
cover child processes exactly as they cover worker threads — no orphaned
children survive a shut-down scheduler.

The module-level default scheduler is what ``|>`` uses when no scheduler
is given; :func:`use_scheduler` swaps it (also usable as a context
manager), and the ablation benches use that to sweep worker counts.
"""

from __future__ import annotations

import contextlib
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterator, List

from ..errors import SchedulerShutdownError


class WorkerHandle:
    """A joinable handle on one submitted pipe body."""

    __slots__ = ("_thread", "_done")

    def __init__(self, thread: threading.Thread | None = None) -> None:
        self._thread = thread
        self._done = threading.Event()

    def _mark_done(self) -> None:
        self._done.set()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for the body to finish; True if it has."""
        if self._thread is not None:
            self._thread.join(timeout)
            return not self._thread.is_alive()
        return self._done.wait(timeout if timeout is not None else None)

    def is_alive(self) -> bool:
        if self._thread is not None:
            return self._thread.is_alive()
        return not self._done.is_set()


class PipeScheduler:
    """Dispatches pipe worker bodies onto threads."""

    _ids = itertools.count(1)

    def __init__(self, max_workers: int | None = None, pooled: bool = False) -> None:
        """With ``pooled=True`` run bodies on a shared
        :class:`~concurrent.futures.ThreadPoolExecutor` of *max_workers*
        threads; otherwise spawn a dedicated daemon thread per body
        (max_workers then caps concurrent dedicated threads — ``submit``
        blocks at the cap, None = unlimited)."""
        self.pooled = pooled
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._gate = (
            threading.Semaphore(max_workers) if (max_workers and not pooled) else None
        )
        self._active = 0
        self._lock = threading.Lock()
        self._threads: set[threading.Thread] = set()
        self._processes: set = set()  # live multiprocessing.Process children
        self._sessions: set = set()   # live network sessions/connections
        self._shutdown = False

    def submit(self, body: Callable[[], None], name: str = "pipe") -> WorkerHandle:
        """Run *body* asynchronously; returns a joinable handle.

        In dedicated mode with ``max_workers`` set this blocks until a
        worker slot frees up (that is what bounds thread creation).
        Raises :class:`SchedulerShutdownError` after :meth:`shutdown`.
        """
        if self._shutdown:
            raise SchedulerShutdownError("submit on a shut-down PipeScheduler")
        if self.pooled:
            with self._lock:
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers or 4,
                        thread_name_prefix="repro-pipe",
                    )
                pool = self._pool
            handle = WorkerHandle()
            pool.submit(self._run_pooled, body, handle)
            return handle
        if self._gate is not None:
            # Acquire *before* spawning: the cap bounds thread creation,
            # not just concurrent execution.
            self._gate.acquire()
        thread = threading.Thread(
            target=self._run_gated,
            args=(body,),
            name=f"repro-{name}-{next(self._ids)}",
            daemon=True,
        )
        with self._lock:
            if self._shutdown:
                if self._gate is not None:
                    self._gate.release()
                raise SchedulerShutdownError("submit on a shut-down PipeScheduler")
            self._threads.add(thread)
            # Start under the lock: shutdown() snapshots _threads with the
            # same lock held, so it must never observe (and join) a
            # registered-but-unstarted thread.
            thread.start()
        return WorkerHandle(thread)

    def _run_gated(self, body: Callable[[], None]) -> None:
        try:
            self._run(body)
        finally:
            if self._gate is not None:
                self._gate.release()
            with self._lock:
                self._threads.discard(threading.current_thread())

    def _run_pooled(self, body: Callable[[], None], handle: WorkerHandle) -> None:
        try:
            self._run(body)
        finally:
            handle._mark_done()

    def _run(self, body: Callable[[], None]) -> None:
        with self._lock:
            self._active += 1
        try:
            body()
        finally:
            with self._lock:
                self._active -= 1

    @property
    def active(self) -> int:
        """Number of currently running pipe bodies."""
        with self._lock:
            return self._active

    # -- process accounting ----------------------------------------------------

    def track_process(self, process: Any) -> None:
        """Register a child process backing a pipe worker.

        The process counts against :meth:`leaked` until untracked and is
        terminated by :meth:`shutdown` — the same no-orphans contract the
        scheduler gives dedicated threads.  Raises
        :class:`SchedulerShutdownError` after shutdown, so a worker spawn
        racing shutdown fails *before* the child exists.
        """
        with self._lock:
            if self._shutdown:
                raise SchedulerShutdownError(
                    "track_process on a shut-down PipeScheduler"
                )
            self._processes.add(process)

    def untrack_process(self, process: Any) -> None:
        """Drop a child process that has been reaped (idempotent)."""
        with self._lock:
            self._processes.discard(process)

    @property
    def tracked_processes(self) -> int:
        """Child processes currently registered (reaped ones excluded)."""
        with self._lock:
            return len(self._processes)

    # -- session accounting ----------------------------------------------------

    def track_session(self, session: Any) -> None:
        """Register a network session (a server-side connection stream or
        a client-side remote-pipe connection, :mod:`repro.net`) or an
        async worker (a pending event-loop task, :mod:`repro.coexpr.aio`).

        The session counts against :meth:`leaked` until untracked and is
        killed by :meth:`shutdown` — the no-orphans contract extended to
        open connections and pending tasks.  Sessions expose
        ``is_alive``/``join``/``name`` (the worker contract) plus
        ``kill`` (close the socket / cancel the task now).  Raises
        :class:`SchedulerShutdownError` after shutdown, so a connection
        or task racing shutdown fails before it leaks.
        """
        with self._lock:
            if self._shutdown:
                raise SchedulerShutdownError(
                    "track_session on a shut-down PipeScheduler"
                )
            self._sessions.add(session)

    def untrack_session(self, session: Any) -> None:
        """Drop a session that has closed (idempotent)."""
        with self._lock:
            self._sessions.discard(session)

    @property
    def tracked_sessions(self) -> int:
        """Network sessions currently registered (closed ones excluded)."""
        with self._lock:
            return len(self._sessions)

    # -- lifecycle ------------------------------------------------------------

    def leaked(self, join_timeout: float = 0.0) -> List[Any]:
        """Dedicated worker threads, child processes, and sessions
        (sockets and pending asyncio tasks) still alive.

        With *join_timeout* > 0, gives stragglers that long (total) to
        exit before reporting them — the leak-check fixture uses a short
        grace period so workers mid-teardown are not false positives.
        Threads, tracked processes, and tracked sessions share one
        contract here (all expose ``is_alive``/``join``/``name``), so
        the fixture's ``assert not leaked()`` covers orphaned children
        and un-cancelled event-loop tasks too.
        """
        with self._lock:
            workers = [t for t in self._threads if t.is_alive()]
            workers += [p for p in self._processes if p.is_alive()]
            workers += [s for s in self._sessions if s.is_alive()]
        if join_timeout > 0 and workers:
            deadline = time.monotonic() + join_timeout
            for worker in workers:
                worker.join(max(0.0, deadline - time.monotonic()))
            workers = [w for w in workers if w.is_alive()]
        return workers

    def shutdown(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting work and (optionally) join in-flight workers.

        Idempotent and safe to call with pipes still running: their
        threads are daemons, so an expired *timeout* leaves them to die
        with the process rather than hanging the caller; :meth:`leaked`
        then reports them.  Tracked child processes are terminated first
        (their pump threads then drain and exit), so no child outlives a
        waited shutdown.  ``wait=False`` just flips the flag and signals
        the children.
        """
        with self._lock:
            self._shutdown = True
            threads = list(self._threads)
            processes = list(self._processes)
            sessions = list(self._sessions)
            pool = self._pool
        for process in processes:
            if process.is_alive():
                process.terminate()
        for session in sessions:
            # Closing the socket (or cancelling the loop task) unblocks
            # both ends: socket sessions' threads — scheduler threads
            # themselves — exit and are joined below; async workers'
            # tasks unwind on the loop and are awaited below.
            session.kill()
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
        if wait and (threads or processes or sessions):
            deadline = None if timeout is None else time.monotonic() + timeout
            for worker in threads + processes:
                if deadline is None:
                    worker.join()
                else:
                    worker.join(max(0.0, deadline - time.monotonic()))
            # Await cancelled async sessions: a kill() only *requests*
            # task cancellation — the loop still has to deliver it and
            # run the coroutine's finally blocks.  Bounded even with no
            # timeout: a cancelled task cannot block indefinitely in
            # this runtime, but a wedged loop must not hang shutdown.
            for session in sessions:
                budget = (
                    1.0
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                session.join(budget)
            # A child that ignored SIGTERM inside the budget gets SIGKILL:
            # a shut-down scheduler must not leave orphans behind.
            for process in processes:
                if process.is_alive():
                    kill = getattr(process, "kill", None)
                    if kill is not None:
                        kill()
                        process.join(1.0)


_default = PipeScheduler()
_default_lock = threading.Lock()


def default_scheduler() -> PipeScheduler:
    """The scheduler pipes use when none is passed explicitly."""
    return _default


def set_default_scheduler(scheduler: PipeScheduler) -> PipeScheduler:
    """Replace the process default; returns the previous one."""
    global _default
    with _default_lock:
        previous, _default = _default, scheduler
    return previous


@contextlib.contextmanager
def use_scheduler(scheduler: PipeScheduler) -> Iterator[PipeScheduler]:
    """Temporarily install *scheduler* as the default."""
    previous = set_default_scheduler(scheduler)
    try:
        yield scheduler
    finally:
        set_default_scheduler(previous)
