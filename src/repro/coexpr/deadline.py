"""Deadlines as remaining budget — the cross-tier cancellation clock.

A consumer that walks away mid-stream (the whole point of the paper's
generator proxies, III.B) must not leave a producer burning CPU on
another thread, in a forked child, or on a generator server.  The
deadline layer makes abandonment *active*: a :class:`Deadline` threads
through ``Pipe``/``stage``/``pipeline``/``DataParallel``/``supervise``,
every tier checks it per activation, and expiry tears the producer down
— flush data, deliver :class:`~repro.errors.PipeDeadlineExceeded`,
close — instead of waiting for channel backpressure to stall it.

**The wire rule: budget, never a timestamp.**  A monotonic clock is
process-local (CPython: ``time.monotonic`` has an arbitrary, per-boot,
per-process epoch) and a wall clock is host-local, so an *absolute*
deadline is meaningless on the far side of a fork or a socket.  A
deadline therefore crosses every boundary as its **remaining budget**
(a float, seconds) and is re-anchored against the receiver's own
monotonic clock on receipt — the ``WIRE_DEADLINE`` envelope and the
process tier's child argument both carry this form.  Transit time
eats into the budget unobserved, which errs in the only safe
direction: a deadline can only ever fire early by the boundary-crossing
latency, never late, and never jumps when hosts disagree about the
time of day.
"""

from __future__ import annotations

import time
from typing import Any

__all__ = ["Deadline", "deadline_from"]


class Deadline:
    """A monotonic expiry point, created from (and shipped as) a budget.

    Immutable and thread-safe (reads of one float).  The same object is
    deliberately *shared* along a pipeline and across supervised
    restarts: retries, refreshed pipes, and downstream stages all burn
    the one budget — a restart does not reset the clock.
    """

    __slots__ = ("_expiry",)

    def __init__(self, budget: float) -> None:
        """Expire *budget* seconds from now (negative clamps to 0)."""
        budget = float(budget)
        self._expiry = time.monotonic() + max(budget, 0.0)

    @classmethod
    def after(cls, budget: float) -> "Deadline":
        """Alias constructor reading as prose: ``Deadline.after(2.5)``."""
        return cls(budget)

    def remaining(self) -> float:
        """Seconds of budget left (clamped at 0.0)."""
        return max(0.0, self._expiry - time.monotonic())

    def expired(self) -> bool:
        """True once the budget is gone."""
        return time.monotonic() >= self._expiry

    def budget(self) -> float:
        """The wire form: remaining seconds, to be re-anchored on
        receipt with ``Deadline(budget)`` against the receiver's own
        monotonic clock."""
        return self.remaining()

    def bound(self, timeout: float | None) -> float:
        """*timeout* clipped to the remaining budget (None = budget)."""
        left = self.remaining()
        if timeout is None:
            return left
        return min(timeout, left)

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


def deadline_from(value: Any) -> Deadline | None:
    """Normalize a user-facing ``deadline=`` argument.

    Accepts None (no deadline), a number of seconds of budget, or a
    :class:`Deadline` (passed through unchanged, so one budget can be
    shared across a whole pipeline).
    """
    if value is None or isinstance(value, Deadline):
        return value
    if isinstance(value, (int, float)):
        if value < 0:
            raise ValueError("deadline budget must be >= 0 seconds")
        return Deadline(float(value))
    raise TypeError(
        f"deadline must be None, seconds, or a Deadline, not {value!r}"
    )
