"""Co-expressions — first-class generators with a shadowed environment
(paper Section III.A and the synthesis of Section V.D).

A co-expression pairs a *body factory* with a snapshot of the referenced
local environment taken at creation time:

    ``^e → ((x,y,z) -> <>e) ((() -> [x,y,z])())``

The factory receives the snapshot values and builds the iterator over
fresh, shadowed locals — exactly the lambda-over-copied-locals the
transformer emits in Figure 5.  Shadowing is what prevents interference
when the co-expression later runs interleaved (``@``) or in a pipe thread.

Activation (``@c``) steps the body one result; a co-expression is
exhausted when the body fails.  ``^c`` (refresh) builds a sibling from the
*original* snapshot.  Transmission (``v @ c``) sends a value into the
suspended body (surfacing Python's generator ``send``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator, Sequence

from ..errors import InactiveCoExpressionError
from ..runtime.failure import FAIL
from ..runtime.iterator import IconIterator, as_iterator, unwrap
from ..runtime.refs import deref


class CoExpression:
    """A first-class, explicitly-stepped generator with copied locals."""

    def __init__(
        self,
        body_factory: Callable[..., Any],
        env_getter: Callable[[], Sequence[Any]] | None = None,
        *,
        name: str = "",
    ) -> None:
        """Create a co-expression.

        ``body_factory(*env)`` must return the body — an
        :class:`~repro.runtime.iterator.IconIterator`, a Python generator,
        or any iterable.  ``env_getter`` is evaluated once, *now*: its
        values are the shadow copies of the referenced locals (Figure 5's
        ``() -> IconList.createArray(chunk_r.deref(), f_r.deref())``).
        """
        self._factory = body_factory
        self._env: tuple = tuple(env_getter()) if env_getter is not None else ()
        self.name = name or getattr(body_factory, "__name__", "coexpr")
        self._lock = threading.Lock()
        self._iterator: Iterator[Any] | None = None
        self._done = False
        self._produced = 0

    # -- body management -----------------------------------------------------

    def _build(self) -> Iterator[Any]:
        body = self._factory(*self._env)
        if isinstance(body, IconIterator):
            return body.iterate()
        if hasattr(body, "__next__"):
            return body
        if hasattr(body, "__iter__"):
            return iter(body)
        return iter(as_iterator(body).iterate())

    # -- the calculus operators ----------------------------------------------

    def activate(self, transmit: Any = None) -> Any:
        """``@c`` — step one iteration; the result or :data:`FAIL`.

        Matching the paper's kernel contract, an exhausted co-expression
        keeps failing (unlike a bare iterator it does **not** auto-restart;
        use :meth:`refresh` for a fresh copy).
        """
        with self._lock:
            if self._done:
                return FAIL
            if self._iterator is None:
                if transmit is not None:
                    # Can't transmit into a not-yet-started body.
                    raise InactiveCoExpressionError(
                        "transmission into an unactivated co-expression"
                    )
                self._iterator = self._build()
            try:
                if transmit is None:
                    result = next(self._iterator)
                else:
                    send = getattr(self._iterator, "send", None)
                    if send is None:
                        result = next(self._iterator)
                    else:
                        result = send(transmit)
            except StopIteration:
                self._done = True
                return FAIL
            self._produced += 1
            return deref(unwrap(result))

    def close(self) -> None:
        """Shut the body down: mark the co-expression done and close a
        started generator body (running its ``finally`` blocks).

        Used by pipe cancellation so an abandoned producer releases any
        resources its body holds.  Best-effort from another thread: if
        the body is mid-activation (the lock is held), only the done flag
        is set and the next activation fails immediately.
        """
        acquired = self._lock.acquire(timeout=0.2)
        self._done = True
        if not acquired:
            return
        try:
            iterator = self._iterator
            if iterator is not None:
                closer = getattr(iterator, "close", None)
                if closer is not None:
                    try:
                        closer()
                    except (RuntimeError, ValueError):
                        pass  # body is executing on another thread; flag suffices
        finally:
            self._lock.release()

    def refresh(self) -> "CoExpression":
        """``^c`` — a new co-expression from the original snapshot."""
        fresh = CoExpression.__new__(CoExpression)
        fresh._factory = self._factory
        fresh._env = self._env
        fresh.name = self.name
        fresh._lock = threading.Lock()
        fresh._iterator = None
        fresh._done = False
        fresh._produced = 0
        return fresh

    def results(self) -> Iterator[Any]:
        """``!c`` — remaining results, stepping until failure."""
        while True:
            value = self.activate()
            if value is FAIL:
                return
            yield value

    def create_pipe(self, capacity: int = 0, scheduler: Any = None) -> Any:
        """``|>`` — wrap this co-expression in a threaded generator proxy.

        Mirrors the generated code's ``.createPipe()`` (Figure 5).
        """
        from .pipe import Pipe

        return Pipe(self, capacity=capacity, scheduler=scheduler)

    # -- runtime protocol hooks (so ! @ * work through the kernel) ------------

    def icon_activate(self, transmit: Any = None) -> Any:
        return self.activate(transmit)

    def icon_promote(self) -> Iterator[Any]:
        return self.results()

    def icon_size(self) -> int:
        """``*c`` — the number of results produced so far (Icon)."""
        return self._produced

    def icon_type(self) -> str:
        return "co-expression"

    # -- state ---------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    @property
    def started(self) -> bool:
        return self._iterator is not None or self._done

    def __repr__(self) -> str:
        state = "done" if self._done else ("active" if self.started else "new")
        return f"CoExpression({self.name}, {state}, produced={self._produced})"

    # Alias matching the paper's generated Java.
    createPipe = create_pipe


def coexpr_of(expr: Any, *, name: str = "") -> CoExpression:
    """Build a co-expression over an existing expression or factory.

    ``expr`` may be an :class:`IconIterator` (its ``iterate`` restarts per
    activation set), a zero-argument callable returning an iterable (the
    shadowing closure — recommended: locals copied by the closure's
    default-argument trick or by ``env_getter``), or any iterable.
    """
    if isinstance(expr, CoExpression):
        return expr
    if isinstance(expr, IconIterator):
        return CoExpression(lambda: expr, name=name)
    if callable(expr):
        return CoExpression(expr, name=name)
    return CoExpression(lambda: expr, name=name)
