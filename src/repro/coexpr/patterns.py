"""Pipeline and data-parallel composition patterns (paper Figure 2).

Figure 2 contrasts the two decompositions expressible with the calculus:

* **Pipeline** — ``f(! |> s)``: fixed-code; each stage owns a thread and
  an entire stream, data flows between stages through blocking queues.
* **Data parallel** — ``every (c = chunk(s)) do |> f(!c)``: fixed-data;
  each thread applies the whole function chain to its chunk
  (:mod:`repro.coexpr.dataparallel`).

:func:`stage` builds one pipeline stage (a pipe mapping a function over an
upstream); :func:`pipeline` chains stages.  The helpers use Icon
invocation semantics, so generator functions fan out naturally (one input
producing several outputs) and plain functions map one-to-one.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import threading

from ..errors import ChannelClosedError
from ..runtime.failure import FAIL
from .coexpression import CoExpression
from .dataparallel import apply_mapped, iter_source
from .deadline import deadline_from
from .pipe import Pipe
from .scheduler import PipeScheduler, default_scheduler


# Module-level bodies (not closures) so a process or remote backend can
# ship them by reference: pickling a module-level function costs only its
# qualified name, and the snapshot env carries the parameters.

def _source_body(src: Any) -> Iterator[Any]:
    yield from iter_source(src)


def _stage_body(up: Any, fn: Callable[[Any], Any]) -> Iterator[Any]:
    for value in iter_source(up):
        yield from apply_mapped(fn, value)


def _remote_pipeline_body(source: Any, stages: tuple) -> Iterator[Any]:
    """The whole chain as one portable body: on the server (or in a
    replayed supervised run) it re-expands into a local thread pipeline,
    so the stages still run concurrently — just on the far side of the
    socket instead of one socket per stage."""
    piped = pipeline(source, *stages)
    try:
        yield from piped.iterate()
    finally:
        piped.cancel()


def source_pipe(
    source: Any,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    take_timeout: float | None = None,
    batch: int = 1,
    max_linger: float | None = None,
    backend: str = "thread",
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    mp_context: Any = None,
    remote_address: Any = None,
    deadline: Any = None,
) -> Pipe:
    """``|> s`` — stream a source from its own thread (or, with
    ``backend="process"``, from a crash-isolated child process; with
    ``backend="remote"``, from a generator server at *remote_address*)."""

    return Pipe(
        CoExpression(_source_body, lambda: (source,), name="source"),
        capacity=capacity,
        scheduler=scheduler,
        take_timeout=take_timeout,
        batch=batch,
        max_linger=max_linger,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        mp_context=mp_context,
        remote_address=remote_address,
        deadline=deadline,
    )


def stage(
    fn: Callable[[Any], Any],
    upstream: Any,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    take_timeout: float | None = None,
    batch: int = 1,
    max_linger: float | None = None,
    backend: str = "thread",
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    mp_context: Any = None,
    remote_address: Any = None,
    deadline: Any = None,
) -> Pipe:
    """``|> fn(!upstream)`` — one pipeline stage in its own thread.

    Maps *fn* (generator or plain function) over the upstream's elements
    and streams the results.  ``capacity`` bounds the stage's output
    queue, throttling it relative to its consumer.

    When *upstream* is a pipe, the new stage records it as its
    ``upstream``: if this stage dies or is cancelled, cancellation
    propagates up the chain so no producer is left blocked on a full
    channel.

    ``backend="process"`` applies the degradation rules of
    :mod:`repro.coexpr.proc`: a stage fed by an in-parent pipe cannot
    cross the process boundary and falls back to a thread (``DEGRADED``
    monitor event); a stage over a self-contained source isolates.
    ``backend="remote"`` follows the same rule over the network: only a
    stage whose upstream can travel (and whose *fn* pickles) is shipped
    to the server at *remote_address*.
    """

    name = getattr(fn, "__name__", "stage")
    piped = Pipe(
        CoExpression(_stage_body, lambda: (upstream, fn), name=name),
        capacity=capacity,
        scheduler=scheduler,
        take_timeout=take_timeout,
        batch=batch,
        max_linger=max_linger,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        mp_context=mp_context,
        remote_address=remote_address,
        deadline=deadline,
    )
    if hasattr(upstream, "cancel"):
        piped.upstream = upstream
    return piped


def pipeline(
    source: Any,
    *stages: Callable[[Any], Any],
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
    take_timeout: float | None = None,
    batch: int = 1,
    max_linger: float | None = None,
    backend: str = "thread",
    heartbeat_interval: float | None = None,
    heartbeat_timeout: float | None = None,
    mp_context: Any = None,
    remote_address: Any = None,
    deadline: Any = None,
) -> Pipe:
    """Chain *stages* over *source*, one thread per stage.

    ``pipeline(s, f, g)`` is ``|> g(! |> f(! |> s))``: consuming the
    returned pipe drives every stage concurrently.  With no stages the
    result is just the source pipe.

    The stages are linked for cancellation: when any stage crashes or
    the returned pipe is cancelled, every upstream producer is cancelled
    too (never orphaned blocked on a full channel).  ``take_timeout``
    becomes the per-take deadline of every stage, so a stall anywhere in
    the chain surfaces as :class:`~repro.errors.PipeTimeoutError`.
    ``batch``/``max_linger`` apply to every stage: each handoff moves up
    to *batch* elements per lock acquisition (see :class:`Pipe`).
    ``backend="process"`` crash-isolates the source pipe; the channel-fed
    stages above it degrade to threads (see :mod:`repro.coexpr.proc`).

    ``backend="remote"`` ships the **whole chain** to the generator
    server at *remote_address* as one pipe: the server re-expands it into
    a local thread pipeline and streams the final stage's results back
    over a single connection (one socket hop for the chain, not one per
    stage — and a shape supervision can replay on reconnect).  If the
    source or any stage cannot be pickled, the pipe degrades to the
    all-thread form.

    ``deadline`` is normalized once and **shared** by the source and
    every stage — one end-to-end budget for the chain, not a fresh
    clock per hop.  ``remote_address`` is normalized the same way: a
    list of ``(host, port)`` pairs becomes **one**
    :class:`~repro.net.cluster.ServerPool` shared by the whole chain,
    so routing memory (suspicion, failover history) is chain-wide.
    """
    deadline = deadline_from(deadline)
    if backend == "remote" and remote_address is not None:
        from ..net.cluster import normalize_remote_address

        remote_address = normalize_remote_address(remote_address)
    if backend == "remote" and stages:
        return Pipe(
            CoExpression(
                _remote_pipeline_body,
                lambda: (source, tuple(stages)),
                name=f"pipeline[{len(stages)}]",
            ),
            capacity=capacity,
            scheduler=scheduler,
            take_timeout=take_timeout,
            batch=batch,
            max_linger=max_linger,
            backend=backend,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            mp_context=mp_context,
            remote_address=remote_address,
            deadline=deadline,
        )
    current: Pipe = source_pipe(
        source,
        capacity=capacity,
        scheduler=scheduler,
        take_timeout=take_timeout,
        batch=batch,
        max_linger=max_linger,
        backend=backend,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        mp_context=mp_context,
        remote_address=remote_address,
        deadline=deadline,
    )
    for fn in stages:
        current = stage(
            fn,
            current,
            capacity=capacity,
            scheduler=scheduler,
            take_timeout=take_timeout,
            batch=batch,
            max_linger=max_linger,
            backend=backend,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            mp_context=mp_context,
            remote_address=remote_address,
            deadline=deadline,
        )
    return current


def fan_out(
    upstream: Any,
    count: int,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
) -> list[Pipe]:
    """Split one stream across *count* competing consumers.

    All returned pipes share the upstream pipe's output channel: each
    element goes to exactly one of them (work sharing, not broadcast).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    shared = upstream if isinstance(upstream, Pipe) else source_pipe(
        upstream, capacity=capacity, scheduler=scheduler
    )
    shared.start()

    def body(src: Pipe) -> Iterator[Any]:
        while True:
            value = src.take()
            if value is FAIL:
                return
            yield value

    return [
        Pipe(
            CoExpression(body, lambda: (shared,), name=f"fanout-{index}"),
            capacity=capacity,
            scheduler=scheduler,
        )
        for index in range(count)
    ]


def merge(
    *upstreams: Any,
    capacity: int = 0,
    scheduler: PipeScheduler | None = None,
) -> Pipe:
    """Interleave several streams into one (completion order).

    Each upstream is drained by its own forwarder thread into a shared
    channel; the returned pipe yields items as they arrive.
    """
    out = Pipe(
        CoExpression(lambda: iter(()), name="merge"),
        capacity=capacity,
        scheduler=scheduler,
    )
    out._started = True  # forwarder threads below replace the usual worker

    sources = [
        up if isinstance(up, Pipe) else source_pipe(up, scheduler=scheduler)
        for up in upstreams
    ]
    remaining = len(sources)
    lock = threading.Lock()

    def forward(src: Pipe) -> None:
        nonlocal remaining
        try:
            while True:
                value = src.take()
                if value is FAIL:
                    return
                out.out.put(value)
        except ChannelClosedError:
            src.cancel()  # consumer abandoned the merge: stop this source
        finally:
            with lock:
                remaining -= 1
                if remaining == 0:
                    out.out.close()

    sched = scheduler or default_scheduler()
    for src in sources:
        sched.submit(lambda s=src: forward(s), name="merge")
    if not sources:
        out.out.close()
    return out
