"""Ablation A2 — chunk size for map-reduce (Figure 4 uses 1000).

Small chunks spawn many task pipes (coordination-heavy); large chunks
serialize the work into few tasks.  The sweep exposes the trade-off the
paper's ``DataParallel(1000)`` constant bakes in.
"""

import pytest

from repro.bench.embedded import EmbeddedSuite
from repro.bench.workloads import LIGHT, expected_total, generate_lines

LINES = generate_lines(num_lines=32, words_per_line=8)
REFERENCE = expected_total(LINES, LIGHT)


@pytest.mark.parametrize("chunk_size", [2, 8, 32, 128, 512])
def test_chunk_size_sweep(benchmark, chunk_size):
    suite = EmbeddedSuite(LINES, LIGHT, chunk_size=chunk_size)
    benchmark.group = "ablation-chunk-size"
    benchmark.extra_info["chunk_size"] = chunk_size
    result = benchmark(suite.mapreduce)
    assert result == pytest.approx(REFERENCE)


@pytest.mark.parametrize("chunk_size", [2, 32, 512])
def test_chunk_size_host_dataparallel(benchmark, chunk_size):
    """The host-level DataParallel under the same sweep, for contrast."""
    from repro.coexpr.dataparallel import DataParallel

    words = [w for line in LINES for w in line.split()]
    dp = DataParallel(chunk_size=chunk_size)
    benchmark.group = "ablation-chunk-size-host"
    benchmark.extra_info["chunk_size"] = chunk_size

    def run():
        return dp.reduce(
            lambda w: LIGHT.hash_number(LIGHT.word_to_number(w)),
            words,
            lambda a, b: a + b,
            0.0,
        )

    assert benchmark(run) == pytest.approx(REFERENCE)
