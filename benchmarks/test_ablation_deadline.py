"""Ablation A10 — deadline reclaim latency across the execution tiers.

A deadline is only as good as the cleanup behind it: when the budget
expires, how long until the producer's resources are actually *gone*?
This sweep measures the reclaim window — from the consumer catching
:class:`~repro.errors.PipeDeadlineExceeded` to the pipe's scheduler
reporting nothing left to join (worker thread parked, child process
reaped, pump thread and socket closed; for the remote tier the bar also
waits for the server to report zero active sessions).

The interesting comparison is the *mechanism* each tier reclaims by:

* ``thread`` — the producer notices its own expiry check between
  activations and unwinds through the crash handlers;
* ``process`` — the child does the same, then the parent reaps it
  (terminate + join on the cancel path);
* ``remote`` — ``WIRE_CANCEL`` crosses the socket, the server kills the
  session cooperatively, and both sides tear down.

``benchmark.pedantic`` is used so the expiry itself (a fixed budget of
sleeping) happens in setup and only the reclaim is timed.

Run with ``--benchmark-json=ablation_deadline.json`` to export the
numbers (CI uploads that file as a workflow artifact).
"""

import time

import pytest

from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe
from repro.coexpr.proc import default_context
from repro.coexpr.scheduler import PipeScheduler
from repro.errors import PipeDeadlineExceeded
from repro.net import GeneratorServer

BACKENDS = ("thread", "process", "remote")
#: Budget burnt in setup before the timed reclaim begins.
BUDGET = 0.1
#: Fast watchdog so the tiers' liveness machinery is in the measurement.
HEARTBEAT = 0.05


def ticking(period):
    """A portable never-ending producer (pickled by the process and
    remote tiers); the deadline is the only thing that stops it."""
    value = 0
    while True:
        time.sleep(period)
        yield value
        value += 1


def _check_backend(backend):
    if (
        backend == "process"
        and default_context().get_start_method() != "fork"
    ):
        pytest.skip("the process bar assumes a fork platform")


@pytest.mark.parametrize("backend", BACKENDS)
def test_reclaim_latency_sweep(benchmark, backend):
    _check_backend(backend)
    benchmark.group = "ablation-deadline-reclaim"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["budget"] = BUDGET

    server = GeneratorServer().start() if backend == "remote" else None

    def expire():
        """Setup: spawn on a fresh scheduler, stream until the budget
        expires.  Returns the pipe+scheduler for the timed phase."""
        scheduler = PipeScheduler()
        piped = Pipe(
            CoExpression(ticking, lambda: (0.005,), name="bench-deadline"),
            scheduler=scheduler,
            backend=backend,
            deadline=BUDGET,
            heartbeat_interval=HEARTBEAT,
            remote_address=server.address if server is not None else None,
        ).start()
        assert piped.degraded is None, piped.degraded
        with pytest.raises(PipeDeadlineExceeded):
            for _ in piped.iterate():
                pass
        return (piped, scheduler), {}

    def reclaim(piped, scheduler):
        """The measured phase: expiry already raised — wait for every
        resource the stream held to be released."""
        leaked = scheduler.leaked(join_timeout=10.0)
        assert leaked == [], leaked
        if server is not None:
            limit = time.monotonic() + 10.0
            while server.stats["active"] and time.monotonic() < limit:
                time.sleep(0.002)
            assert server.stats["active"] == 0

    try:
        benchmark.pedantic(reclaim, setup=expire, rounds=5, iterations=1)
    finally:
        if server is not None:
            server.shutdown(wait=True)
