"""Figure 6 — all sixteen bars as pytest-benchmark entries.

Eight variants per weight class: {Junicon, Native} × {Sequential,
Pipeline, DataParallel, MapReduce}, over the lightweight and heavyweight
hash functions.  Compare group means to read off the paper's normalized
bars; ``python -m repro.bench.report`` prints them directly with 99% CIs
and the claim checks.
"""

import pytest

from repro.bench.native import NATIVE_VARIANTS
from repro.bench.workloads import HEAVY, LIGHT

VARIANTS = ("Sequential", "Pipeline", "DataParallel", "MapReduce")


# -- lightweight (Figure 6, left) --------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_light_native(benchmark, corpus, light_reference, variant):
    fn = NATIVE_VARIANTS[variant]
    benchmark.group = "figure6-light"
    result = benchmark(lambda: fn(corpus, LIGHT))
    assert result == pytest.approx(light_reference)


@pytest.mark.parametrize("variant", VARIANTS)
def test_light_junicon(benchmark, light_suite, light_reference, variant):
    runner = light_suite.variant(variant)
    benchmark.group = "figure6-light"
    result = benchmark(runner)
    assert result == pytest.approx(light_reference)


# -- heavyweight (Figure 6, right) --------------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
def test_heavy_native(benchmark, corpus, heavy_reference, variant):
    fn = NATIVE_VARIANTS[variant]
    benchmark.group = "figure6-heavy"
    result = benchmark(lambda: fn(corpus, HEAVY))
    assert result == pytest.approx(heavy_reference)


@pytest.mark.parametrize("variant", VARIANTS)
def test_heavy_junicon(benchmark, heavy_suite, heavy_reference, variant):
    runner = heavy_suite.variant(variant)
    benchmark.group = "figure6-heavy"
    result = benchmark(runner)
    assert result == pytest.approx(heavy_reference)
