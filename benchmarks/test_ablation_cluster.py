"""Ablation A11 — cluster failover latency and exactly-once replay.

Two recovery shapes of the cluster tier, swept over the heartbeat
interval ``h`` (the knob that decides how fast a *silent* replica death
is detected):

* **failover latency** — the primary replica for the stream's route key
  is a quiet listener (accepts the dial, never speaks: the worst
  failure mode, indistinguishable from a live server until the watchdog
  fires).  With ``heartbeat_timeout = h`` the time-to-first-item is the
  detection cost plus one redial — the acceptance bound is **2
  heartbeat intervals**.  Crash-style deaths (connection reset) are
  detected immediately and sit well under this bound; the quiet
  listener prices the ceiling.
* **exactly-once replay** — a replica is killed mid-stream after a
  fixed prefix (deterministic ``FaultPlan.kill_server`` chaos); the
  run must deliver the identical full sequence — the supervised replay
  skips the delivered prefix on the next replica, so the prefix is
  *preserved*, never re-emitted and never lost.

Run with ``--benchmark-json=ablation_cluster.json`` to export the
numbers (CI uploads that file as a workflow artifact).
"""

import itertools
import socket
import threading
import time

import pytest

from repro.coexpr.coexpression import CoExpression
from repro.coexpr.supervision import NO_BACKOFF, FaultPlan, supervise
from repro.net import GeneratorServer, ServerPool
from repro.net.client import reset_breakers

#: Watchdog sweep: how long a silent replica can hide.
HEARTBEATS = (0.1, 0.2, 0.4)
#: Stream length per run — long enough to straddle the mid-stream kill.
STREAM = 50
#: Route key of the replay benchmark (any stable name works).
REPLAY_KEY = "bench-cluster-replay"


def counting(n):
    """Portable stream body (pickled by qualified name)."""
    yield from range(n)


def _supervised(pool, key, h):
    return supervise(
        CoExpression(counting, lambda: (STREAM,), name=key),
        backend="remote",
        remote_address=pool,
        capacity=8,
        heartbeat_interval=h,
        heartbeat_timeout=h,
        backoff=NO_BACKOFF,
        max_retries=3,
    )


class QuietListener:
    """Accepts connections and never speaks — the silent-death replica."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.address = self.sock.getsockname()
        self.accepted = []
        self.thread = threading.Thread(target=self._accept, daemon=True)
        self.thread.start()

    def _accept(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.accepted.append(conn)

    def close(self):
        self.sock.close()
        self.thread.join(timeout=5)
        for conn in self.accepted:
            conn.close()


@pytest.fixture(scope="module")
def quiet():
    listener = QuietListener()
    yield listener
    listener.close()


@pytest.fixture(scope="module")
def live():
    with GeneratorServer() as server:
        yield server


def _key_owned_by(addresses, owner):
    """A route key whose ring primary is *owner* (brute-forced; the
    ring is deterministic, so this converges in a handful of tries)."""
    probe = ServerPool(addresses)
    for index in itertools.count():
        key = f"bench-cluster-failover-{index}"
        if probe.primary(key) == owner:
            return key


def run_failover(addresses, key, h):
    """One silent-death failover; returns the time-to-first-item."""
    # Fresh breaker + pool state per round: every round must pay the
    # full detection cost (a warm pool would route around the corpse).
    reset_breakers()
    pool = ServerPool(addresses)
    piped = _supervised(pool, key, h)
    start = time.perf_counter()
    it = piped.iterate()
    first = next(it)
    latency = time.perf_counter() - start
    rest = list(it)
    assert [first] + rest == list(range(STREAM))
    assert pool.stats()["failovers"] == 1
    return latency


@pytest.mark.parametrize("h", HEARTBEATS)
def test_silent_failover_latency(benchmark, quiet, live, h):
    addresses = [quiet.address, live.address]
    key = _key_owned_by(addresses, quiet.address)
    benchmark.group = f"ablation-cluster-failover-h{h}"
    benchmark.extra_info["heartbeat"] = h
    benchmark.extra_info["mode"] = "silent-listener"
    latency = benchmark(lambda: run_failover(addresses, key, h))
    # The acceptance bound: detection (the watchdog fires at one
    # heartbeat interval) plus the redial fit in two intervals.
    assert latency <= 2 * h, (
        f"failover took {latency:.3f}s with h={h} (bound {2 * h:.3f}s)"
    )


def run_replay(h):
    """One mid-stream replica kill; returns the delivered count."""
    reset_breakers()
    with GeneratorServer() as one, GeneratorServer() as two:
        plan = FaultPlan()
        pool = ServerPool(
            [one.address, two.address], fault_plan=plan
        )
        victim_address = pool.primary(REPLAY_KEY)
        (victim,) = [s for s in (one, two) if s.address == victim_address]
        plan.kill_server(REPLAY_KEY, victim, on_attempts=(1,), after_items=10)
        piped = _supervised(pool, REPLAY_KEY, h)
        got = list(piped.iterate())
        # Delivered-prefix preservation: the full sequence, in order,
        # no duplicates from the replay and no gap at the kill point.
        assert got == list(range(STREAM))
        assert pool.stats()["failovers"] == 1
        return piped.delivered


@pytest.mark.parametrize("h", HEARTBEATS)
def test_exactly_once_replay_after_kill(benchmark, h):
    benchmark.group = f"ablation-cluster-replay-h{h}"
    benchmark.extra_info["heartbeat"] = h
    benchmark.extra_info["mode"] = "kill-server"
    delivered = benchmark(lambda: run_replay(h))
    assert delivered == STREAM
