"""Ablation A9 — the network execution tier (``backend="remote"``).

A remote pipe pays everything a process pipe pays (pickle per slice, a
pump-thread hop) plus TCP framing and credit-grant round trips — but
over loopback it skips the fork, so its fixed cost lands between the
thread and process tiers.  This sweep prices the wire on the Figure 6
pipeline split across batch sizes: batching amortizes the per-envelope
framing cost exactly as it amortizes the channel handoff in A7, so
``batch`` is the knob that decides whether remote streaming is viable.

Thread and process bars at the same batch size calibrate the scale; the
loopback server runs in-process, so these numbers are protocol cost
only — no real network latency, no serialization to a second host.

Run with ``--benchmark-json=ablation_net.json`` to export the numbers
(CI uploads that file as a workflow artifact).
"""

import pytest

from repro.bench.workloads import HEAVY, LIGHT
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe
from repro.coexpr.proc import default_context
from repro.net import GeneratorServer

BATCHES = (1, 32, 256)
BACKENDS = ("thread", "process", "remote")
#: Same bounded-queue shape as the A7 batching sweep.
CAPACITY = 1024


def producer(lines, word_to_number):
    """Stage 1 of the Figure 6 pipeline split, as a portable body: both
    the process and network tiers ship it by pickle."""
    for line in lines:
        for word in line.split():
            yield word_to_number(word)


@pytest.fixture(scope="module")
def loopback():
    with GeneratorServer() as server:
        yield server


def pipeline_total(lines, weight, batch, backend, address) -> float:
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number
    coexpr = CoExpression(
        producer, lambda: (lines, word_to_number), name="bench-net"
    )
    piped = Pipe(
        coexpr,
        capacity=CAPACITY,
        batch=batch,
        backend=backend,
        remote_address=address if backend == "remote" else None,
    ).start()
    # Price the tier itself, never a silent thread fallback.
    assert piped.degraded is None, piped.degraded
    total = 0.0
    for number in piped:
        total += hash_number(number)
    return total


def _check_backend(backend):
    if (
        backend == "process"
        and default_context().get_start_method() != "fork"
    ):
        pytest.skip("the process bar assumes a fork platform")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batch", BATCHES)
def test_light_net_sweep(
    benchmark, corpus, light_reference, loopback, batch, backend
):
    _check_backend(backend)
    benchmark.group = f"ablation-net-light-batch{batch}"
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["backend"] = backend
    result = benchmark(
        lambda: pipeline_total(corpus, LIGHT, batch, backend, loopback.address)
    )
    assert result == pytest.approx(light_reference)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batch", BATCHES)
def test_heavy_net_sweep(
    benchmark, corpus, heavy_reference, loopback, batch, backend
):
    _check_backend(backend)
    benchmark.group = f"ablation-net-heavy-batch{batch}"
    benchmark.extra_info["batch"] = batch
    benchmark.extra_info["backend"] = backend
    result = benchmark(
        lambda: pipeline_total(corpus, HEAVY, batch, backend, loopback.address)
    )
    assert result == pytest.approx(heavy_reference)
