"""Ablation A7 — batched channel transport (`batch=N` on pipes).

The paper's chunked pipes exist because item-at-a-time streaming through
a blocking queue pays a mutex acquire and condition-variable round trip
per element.  This sweep measures what coalescing the handoff buys on
the Figure 6 light workload (where synchronization dominates the
per-element compute) and what it costs on the heavy workload (where
compute dominates and batching should be ~neutral).

``batch=1`` is the unbatched worker loop — the pre-batching baseline —
so the sweep also guards against a regression when batching is off.

Run with ``--benchmark-json=ablation_batch.json`` to export the numbers
(CI uploads that file as a workflow artifact).
"""

import pytest

from repro.bench.workloads import HEAVY, LIGHT, expected_total, generate_lines
from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe

BATCHES = (1, 8, 64, 512)
#: Same bounded-queue shape as the native pipeline variant.
CAPACITY = 1024


def pipeline_total(lines, weight, batch: int) -> float:
    """The Figure 6 pipeline split: stage 1 (worker thread) converts
    words to numbers, stage 2 (this thread) hashes and sums."""
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number

    def producer():
        for line in lines:
            for word in line.split():
                yield word_to_number(word)

    piped = Pipe(CoExpression(producer), capacity=CAPACITY, batch=batch)
    total = 0.0
    for number in piped:
        total += hash_number(number)
    return total


@pytest.mark.parametrize("batch", BATCHES)
def test_light_batch_sweep(benchmark, corpus, light_reference, batch):
    benchmark.group = "ablation-batch-light"
    benchmark.extra_info["batch"] = batch
    result = benchmark(lambda: pipeline_total(corpus, LIGHT, batch))
    assert result == pytest.approx(light_reference)


@pytest.mark.parametrize("batch", BATCHES)
def test_heavy_batch_sweep(benchmark, corpus, heavy_reference, batch):
    benchmark.group = "ablation-batch-heavy"
    benchmark.extra_info["batch"] = batch
    result = benchmark(lambda: pipeline_total(corpus, HEAVY, batch))
    assert result == pytest.approx(heavy_reference)


@pytest.mark.parametrize("batch", BATCHES)
def test_light_batch_with_linger(benchmark, corpus, light_reference, batch):
    """The latency-bounded configuration: same sweep with a 5 ms linger
    flusher armed, measuring what the latency bound costs in throughput."""
    word_to_number = LIGHT.word_to_number
    hash_number = LIGHT.hash_number

    def run():
        def producer():
            for line in corpus:
                for word in line.split():
                    yield word_to_number(word)

        piped = Pipe(
            CoExpression(producer), capacity=CAPACITY, batch=batch, max_linger=0.005
        )
        total = 0.0
        for number in piped:
            total += hash_number(number)
        return total

    benchmark.group = "ablation-batch-linger"
    benchmark.extra_info["batch"] = batch
    assert benchmark(run) == pytest.approx(light_reference)
