"""Ablation A6 — the cost of monitoring probes (the §IX exploration).

Monitoring is a post-transformation wrapping pass, so its cost is pure
per-event overhead; this bench quantifies it on the embedded sequential
word count: untraced vs traced-with-buffer vs traced-with-null-sink.

Note on granularity: instrumentation wraps the *instrumented tree* — here
the top-level invocation expression.  Method bodies constructed inside a
call are not auto-wrapped, so probes cost only where they are placed;
the small deltas measured here are exactly that locality property.
"""

import pytest

from repro.lang.interp import JuniconInterpreter
from repro.monitor import Tracer
from repro.bench.workloads import LIGHT, expected_total, generate_lines

LINES = generate_lines(num_lines=12, words_per_line=6)
REFERENCE = expected_total(LINES, LIGHT)

PROGRAM = """
def hash_all() {
    local total, line, w;
    total := 0.0;
    every line := !LINES do
        every w := !line::split() do
            total +:= HASH(W2N(w));
    return total;
}
"""


def make_session():
    interp = JuniconInterpreter()
    interp.load(PROGRAM)
    interp.namespace.update(
        LINES=LINES, W2N=LIGHT.word_to_number, HASH=LIGHT.hash_number
    )
    return interp


def test_untraced(benchmark):
    interp = make_session()
    benchmark.group = "ablation-monitoring"
    benchmark.extra_info["mode"] = "untraced"
    result = benchmark(lambda: interp.eval("hash_all()"))
    assert result == pytest.approx(REFERENCE)


def test_traced(benchmark):
    interp = make_session()
    tracer = Tracer(max_events=1000)

    def run():
        node = tracer.instrument(interp.expression("hash_all()"))
        return node.first()

    benchmark.group = "ablation-monitoring"
    benchmark.extra_info["mode"] = "traced"
    assert benchmark(run) == pytest.approx(REFERENCE)


def test_traced_null_sink(benchmark):
    interp = make_session()

    def run():
        tracer = Tracer(sink=lambda event: None, max_events=100)
        node = tracer.instrument(interp.expression("hash_all()"))
        return node.first()

    benchmark.group = "ablation-monitoring"
    benchmark.extra_info["mode"] = "traced+sink"
    assert benchmark(run) == pytest.approx(REFERENCE)
