"""Ablation A8 — the process execution tier (``backend="process"``).

Crash isolation is not free: a process-backed pipe pays a fork, an IPC
pickle round trip per slice, and a pump-thread hop that thread pipes
skip.  This sweep prices the tier on its best-suited shape — chunked
``DataParallel.map_reduce``, where each task ships one folded
accumulator back — across chunk sizes, thread vs process, on the
CPU-bound heavy workload (where the GIL makes process workers
*potentially* profitable) and the light workload (where IPC overhead
should dominate).

On a multi-core host the heavy/process bars can beat heavy/thread (the
GIL-free payoff); on a single-core container they honestly record pure
isolation overhead instead.  Either way thread-vs-process at equal
chunk size is the cost of crash isolation.

Run with ``--benchmark-json=ablation_proc.json`` to export the numbers
(CI uploads that file as a workflow artifact).
"""

import pytest

from repro.bench.workloads import HEAVY, LIGHT
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.proc import default_context

CHUNKS = (50, 200)
BACKENDS = ("thread", "process")

pytestmark = pytest.mark.skipif(
    default_context().get_start_method() != "fork",
    reason="the process-tier ablation assumes a fork platform",
)


def words_of(corpus):
    return [word for line in corpus for word in line.split()]


def map_reduce_total(words, weight, chunk_size: int, backend: str) -> float:
    """The Figure 6 map-reduce split over *backend* workers: each chunk
    task converts and hashes its words, folding locally; the parent sums
    the per-chunk accumulators in order."""
    word_to_number = weight.word_to_number
    hash_number = weight.hash_number

    dp = DataParallel(chunk_size=chunk_size, backend=backend)
    return dp.reduce(
        lambda word: hash_number(word_to_number(word)),
        words,
        lambda a, b: a + b,
        0.0,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("chunk", CHUNKS)
def test_heavy_proc_sweep(benchmark, corpus, heavy_reference, chunk, backend):
    benchmark.group = f"ablation-proc-heavy-chunk{chunk}"
    benchmark.extra_info["chunk"] = chunk
    benchmark.extra_info["backend"] = backend
    words = words_of(corpus)
    result = benchmark(lambda: map_reduce_total(words, HEAVY, chunk, backend))
    assert result == pytest.approx(heavy_reference)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("chunk", CHUNKS)
def test_light_proc_sweep(benchmark, corpus, light_reference, chunk, backend):
    benchmark.group = f"ablation-proc-light-chunk{chunk}"
    benchmark.extra_info["chunk"] = chunk
    benchmark.extra_info["backend"] = backend
    words = words_of(corpus)
    result = benchmark(lambda: map_reduce_total(words, LIGHT, chunk, backend))
    assert result == pytest.approx(light_reference)
