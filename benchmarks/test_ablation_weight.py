"""Ablation A4 — task weight vs relative overhead (the mechanism behind
Figure 6's left-to-right shrinkage: "as the weight of the computational
nodes increases, the relative overhead of the embedded concurrent
generators significantly decreases").

Sweeps a synthetic hash weight and benchmarks the embedded and native
sequential variants at each point; the ratio trend is the paper's claim
C2 as a curve rather than two endpoints.
"""

import math

import pytest

from repro.bench.embedded import EmbeddedSuite
from repro.bench.workloads import Weight, expected_total, generate_lines

LINES = generate_lines(num_lines=16, words_per_line=6)


def make_weight(rounds: int) -> Weight:
    def word_to_number(word: str) -> int:
        return int(str(word), 36)

    def hash_number(number: int) -> float:
        x = math.sqrt(float(number))
        for i in range(1, rounds + 1):
            x += math.sin(x / i)
        return x

    return Weight(f"rounds{rounds}", word_to_number, hash_number)


WEIGHT_POINTS = [0, 8, 64, 512]


@pytest.mark.parametrize("rounds", WEIGHT_POINTS)
def test_weight_sweep_embedded(benchmark, rounds):
    weight = make_weight(rounds)
    suite = EmbeddedSuite(LINES, weight, chunk_size=100)
    benchmark.group = f"ablation-weight-{rounds}"
    benchmark.extra_info["suite"] = "junicon"
    result = benchmark(suite.sequential)
    assert result == pytest.approx(expected_total(LINES, weight))


@pytest.mark.parametrize("rounds", WEIGHT_POINTS)
def test_weight_sweep_native(benchmark, rounds):
    from repro.bench.native import native_sequential

    weight = make_weight(rounds)
    benchmark.group = f"ablation-weight-{rounds}"
    benchmark.extra_info["suite"] = "native"
    result = benchmark(lambda: native_sequential(LINES, weight))
    assert result == pytest.approx(expected_total(LINES, weight))
