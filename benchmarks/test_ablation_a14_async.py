"""Ablation A14 — event-loop server concurrency vs the threaded server.

The async tier's capacity claim, measured: the threaded
:class:`GeneratorServer` spends **two scheduler threads per session**
(handler + reader), so its sustainable concurrency is a thread budget;
the :class:`AsyncGeneratorServer` multiplexes every session onto one
event-loop thread, so sessions cost a coroutine each and concurrency is
bounded by memory, not threads.

Protocol: open N trickle streams against one server with ``capacity=1``
— after the first take each session sits credit-blocked server-side, so
all N are *sustained concurrently* (pinned open by flow control, the
long-poll/feed shape).  At peak we assert ``stats["active"] == N``,
then measure per-item latency by draining a sample of sessions while
the rest stay pinned, then drain everything and check the sequences are
exact.  The threaded baseline runs at its per-session-thread budget
(N=12, i.e. 24 server threads); the async server runs the same protocol
at **10× the sessions (N=120) on one loop thread**, and its per-item
latency must stay comparable.

Every client is the unmodified sync ``RemotePipe`` stack — the 10×
claim holds with zero client changes.

Run with ``--benchmark-json=ablation_async.json`` to export the numbers
(CI uploads that file as a workflow artifact).
"""

import threading
import time

import pytest

from repro.net import AsyncGeneratorServer, GeneratorServer, RemotePipe
from repro.net.client import reset_breakers
from repro.runtime.failure import FAIL

#: The threaded baseline's session count (≈ 2·N server threads).
BASELINE_SESSIONS = 12
#: The async server's session count — the ≥10× acceptance target.
ASYNC_SESSIONS = 120
#: Items per stream; with capacity=1 each take is one credit round trip.
ITEMS = 30
#: Sessions drained one-at-a-time for the per-item latency figure.
LATENCY_SAMPLE = 5

#: Cross-test stash so the async run can assert the ratio against the
#: threaded baseline measured in the same process.
RESULTS: dict = {}


def counting(n):
    """Portable stream body (pickled by qualified name)."""
    yield from range(n)


def run_tier(server_cls, sessions):
    """Open *sessions* concurrent pinned streams; return the metrics."""
    reset_breakers()
    with server_cls() as server:
        server.register("counting", counting)
        pipes = [
            RemotePipe(server.address, "counting", args=(ITEMS,), capacity=1)
            for _ in range(sessions)
        ]
        # First take establishes every session; capacity=1 then holds
        # each one credit-blocked server-side — sustained, not serial.
        for pipe in pipes:
            assert pipe.take() == 0
        peak = server.stats["active"]
        assert peak == sessions, f"only {peak}/{sessions} sessions sustained"
        threads_at_peak = threading.active_count()

        # Per-item latency while the other sessions stay pinned: each
        # take is a full data + credit-replenish round trip.
        per_item = []
        for pipe in pipes[:LATENCY_SAMPLE]:
            start = time.perf_counter()
            got = [pipe.take() for _ in range(ITEMS - 1)]
            per_item.append((time.perf_counter() - start) / (ITEMS - 1))
            assert got == list(range(1, ITEMS))
            assert pipe.take() is FAIL
        per_item.sort()
        median = per_item[len(per_item) // 2]

        # Drain the rest: every pinned stream is exact and complete.
        for pipe in pipes[LATENCY_SAMPLE:]:
            got = [pipe.take() for _ in range(ITEMS - 1)]
            assert got == list(range(1, ITEMS))
            assert pipe.take() is FAIL
        assert server.stats["served"] == sessions
    return {
        "sessions": peak,
        "median_item_latency": median,
        "threads_at_peak": threads_at_peak,
    }


def test_a14_threaded_baseline(benchmark):
    benchmark.group = "ablation-a14-concurrency"
    benchmark.extra_info["tier"] = "threaded"
    result = benchmark.pedantic(
        lambda: run_tier(GeneratorServer, BASELINE_SESSIONS),
        rounds=1,
        iterations=1,
    )
    RESULTS["threaded"] = result
    benchmark.extra_info.update(result)
    # The cost model under test: the threaded substrate pays ≥ 2
    # server threads per session (handler + reader) on top of the
    # client pumps.
    assert result["threads_at_peak"] >= 2 * BASELINE_SESSIONS


def test_a14_async_tenfold_sessions(benchmark):
    benchmark.group = "ablation-a14-concurrency"
    benchmark.extra_info["tier"] = "async"
    result = benchmark.pedantic(
        lambda: run_tier(AsyncGeneratorServer, ASYNC_SESSIONS),
        rounds=1,
        iterations=1,
    )
    RESULTS["async"] = result
    benchmark.extra_info.update(result)
    baseline = RESULTS["threaded"]

    # The acceptance claim: ≥10× the threaded baseline's sustained
    # sessions, served by ONE loop thread (the only extra threads in
    # the process are the sync clients' own pumps).
    assert result["sessions"] >= 10 * baseline["sessions"]
    server_side_threads = result["threads_at_peak"] - ASYNC_SESSIONS
    assert server_side_threads < 2 * BASELINE_SESSIONS

    # ... at comparable per-item latency (robust bound: loaded 10×
    # harder, the loop may pay up to 3× the threaded median, floored
    # at 50 ms so a fast-host baseline cannot make the bound vacuous).
    bound = max(3 * baseline["median_item_latency"], 0.05)
    assert result["median_item_latency"] <= bound, (
        f"async per-item {result['median_item_latency'] * 1e3:.2f}ms "
        f"vs bound {bound * 1e3:.2f}ms"
    )
