"""Shared workload fixtures for the benchmark suite.

The corpus is kept laptop-sized; `python -m repro.bench.report` runs the
full JMH-style protocol (20+20 iterations) and the claim checks, while
these pytest-benchmark entries give per-bar timings and regression
tracking.  Tune via environment variables:

* ``REPRO_BENCH_LINES`` (default 40)
* ``REPRO_BENCH_WORDS`` (default 8)
"""

import os

import pytest

from repro.bench.embedded import EmbeddedSuite
from repro.bench.workloads import HEAVY, LIGHT, expected_total, generate_lines

LINES = int(os.environ.get("REPRO_BENCH_LINES", "40"))
WORDS = int(os.environ.get("REPRO_BENCH_WORDS", "8"))
CHUNK = 100


@pytest.fixture(scope="session")
def corpus():
    return generate_lines(num_lines=LINES, words_per_line=WORDS)


@pytest.fixture(scope="session")
def light_reference(corpus):
    return expected_total(corpus, LIGHT)


@pytest.fixture(scope="session")
def heavy_reference(corpus):
    return expected_total(corpus, HEAVY)


@pytest.fixture(scope="session")
def light_suite(corpus):
    return EmbeddedSuite(corpus, LIGHT, chunk_size=CHUNK)


@pytest.fixture(scope="session")
def heavy_suite(corpus):
    return EmbeddedSuite(corpus, HEAVY, chunk_size=CHUNK)
