"""Ablation A3 — the method-body cache (Figure 5: "For optimization the
iterator body is cached in a stack upon method return, and then reused").

Measures the embedded Sequential word count with the cache enabled vs
globally disabled; the difference is the per-invocation cost of
rebuilding reified parameters, temporaries, and the body tree.
"""

import pytest

from repro.runtime.cache import MethodBodyCache
from repro.bench.embedded import EmbeddedSuite
from repro.bench.workloads import LIGHT, expected_total, generate_lines

LINES = generate_lines(num_lines=24, words_per_line=8)
REFERENCE = expected_total(LINES, LIGHT)


@pytest.fixture
def suite():
    return EmbeddedSuite(LINES, LIGHT, chunk_size=64)


def test_cache_enabled(benchmark, suite):
    benchmark.group = "ablation-method-cache"
    benchmark.extra_info["cache"] = "enabled"
    assert benchmark(suite.sequential) == pytest.approx(REFERENCE)


def test_cache_disabled(benchmark, suite):
    benchmark.group = "ablation-method-cache"
    benchmark.extra_info["cache"] = "disabled"
    MethodBodyCache.enabled_globally = False
    try:
        assert benchmark(suite.sequential) == pytest.approx(REFERENCE)
    finally:
        MethodBodyCache.enabled_globally = True


def test_cache_hit_rate_is_high(suite):
    """Sanity companion (not a timing): after warm-up, nearly every call
    reuses a parked body."""
    suite.sequential()
    cache = suite.namespace["_method_cache"]
    before = cache.stats()
    suite.sequential()
    after = cache.stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    assert hits > 0
    assert hits >= misses * 5
