"""Ablation A5 — worker-thread budget for the data-parallel decomposition.

The paper leans on the JVM's pool management (Section V.D); here the
scheduler's concurrency cap is swept.  Under CPython's GIL the curve is
expected to be flat-to-worse for CPU-bound mapping — which is exactly the
substrate difference DESIGN.md documents — while staying correct.
"""

import operator

import pytest

from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.scheduler import PipeScheduler, use_scheduler
from repro.bench.workloads import LIGHT, generate_lines

LINES = generate_lines(num_lines=24, words_per_line=8)
WORDS = [w for line in LINES for w in line.split()]
EXPECTED = sum(LIGHT.hash_number(LIGHT.word_to_number(w)) for w in WORDS)


def run(max_workers):
    scheduler = PipeScheduler(max_workers=max_workers)
    with use_scheduler(scheduler):
        dp = DataParallel(chunk_size=16)
        return dp.reduce(
            lambda w: LIGHT.hash_number(LIGHT.word_to_number(w)),
            WORDS,
            operator.add,
            0.0,
        )


@pytest.mark.parametrize("workers", [1, 2, 4, 8, None])
def test_worker_budget_sweep(benchmark, workers):
    benchmark.group = "ablation-workers"
    benchmark.extra_info["max_workers"] = workers or "unlimited"
    assert benchmark(lambda: run(workers)) == pytest.approx(EXPECTED)
