"""Ablation A13 — recovery latency under sustained membership churn.

A11 priced failover against a *static* fleet: the ring never changed
under the stream.  This ablation re-runs the same two recovery shapes
— silent-death failover and mid-stream kill replay — plus a DataParallel
chunk steal, while a churner thread joins and retires ghost replicas on
a sustained ~250 ms cadence (``mode="churn"`` vs the static-fleet
baseline, same groups as A11 for cross-file comparison):

* **failover latency** — the quiet-listener primary again; churn can
  only add fast-refused dials (a ghost owning the key is an immediate
  ``ECONNREFUSED``, and the weighted ring's minimal-remap property
  means a ghost join/leave moves *only* the ghost's keys), so the
  acceptance bound stays **2 heartbeat intervals** plus a small refused
  -dial allowance.
* **exactly-once replay** — ``kill_server`` after a 10-item prefix
  while the fleet churns; the sequence must still arrive identical and
  exactly once (the ring remapping under the replay must not double-
  deliver or drop the preserved prefix).
* **chunk steal** — a chunk's connection dropped mid-run under churn;
  the stolen re-run must keep ``map_flat`` ordered and complete.

Run with ``--benchmark-json=ablation_membership.json`` to export the
numbers (the ``cluster-churn`` CI job uploads that file).
"""

import itertools
import socket
import threading
import time

import pytest

from repro.coexpr.coexpression import CoExpression
from repro.coexpr.dataparallel import DataParallel
from repro.coexpr.supervision import NO_BACKOFF, FaultPlan, supervise
from repro.net import GeneratorServer, ServerPool
from repro.net.client import reset_breakers

#: Watchdog interval under test (A11 showed latency is linear in h;
#: one sweep point keeps the churn matrix cheap).
HEARTBEAT = 0.1
#: The sustained-churn cadence: one join-or-leave roughly every 250 ms,
#: with the first join fired immediately so even a sub-cadence round
#: sees at least one fleet change.
CHURN_PERIOD = 0.25
#: Stream length per run — long enough to straddle the mid-stream kill.
STREAM = 50
MODES = ("static", "churn")
REPLAY_KEY = "bench-membership-replay"
#: Ghost replicas the churner cycles through: closed low ports refuse
#: the dial immediately, so churn prices remap + reroute, not timeouts.
GHOSTS = (("127.0.0.1", 1), ("127.0.0.1", 2), ("127.0.0.1", 3))


def counting(n):
    """Portable stream body (pickled by qualified name)."""
    yield from range(n)


def double(x):
    return 2 * x


class Churner:
    """Joins and retires ghost members on a fixed cadence.

    The first join fires immediately (a benchmark round shorter than
    the cadence still runs against a churned ring); after that, every
    ``period`` seconds the current ghost leaves and the next one joins
    — a sustained alternation of ``MEMBER_JOIN``/``MEMBER_LEAVE``
    under whatever stream is running.
    """

    def __init__(self, pool, period=CHURN_PERIOD):
        self.pool = pool
        self.period = period
        self.churns = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        ghosts = itertools.cycle(GHOSTS)
        current = next(ghosts)
        self.pool.add(current, source="chaos")
        self.churns += 1
        while not self._stop.wait(self.period):
            self.pool.remove(current, source="chaos")
            current = next(ghosts)
            self.pool.add(current, source="chaos")
            self.churns += 2

    def close(self):
        self._stop.set()
        self._thread.join(timeout=5)


def _churner_for(pool, mode):
    return Churner(pool) if mode == "churn" else None


def _supervised(pool, key, h=HEARTBEAT):
    return supervise(
        CoExpression(counting, lambda: (STREAM,), name=key),
        backend="remote",
        remote_address=pool,
        capacity=8,
        heartbeat_interval=h,
        heartbeat_timeout=h,
        backoff=NO_BACKOFF,
        max_retries=5,
    )


class QuietListener:
    """Accepts connections and never speaks — the silent-death replica."""

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(16)
        self.address = self.sock.getsockname()
        self.accepted = []
        self.thread = threading.Thread(target=self._accept, daemon=True)
        self.thread.start()

    def _accept(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            self.accepted.append(conn)

    def close(self):
        self.sock.close()
        self.thread.join(timeout=5)
        for conn in self.accepted:
            conn.close()


@pytest.fixture(scope="module")
def quiet():
    listener = QuietListener()
    yield listener
    listener.close()


@pytest.fixture(scope="module")
def live():
    with GeneratorServer() as server:
        yield server


def _key_owned_by(addresses, owner):
    """A route key whose ring primary is *owner* (brute-forced; the
    ring is deterministic, so this converges in a handful of tries)."""
    probe = ServerPool(addresses)
    for index in itertools.count():
        key = f"bench-membership-failover-{index}"
        if probe.primary(key) == owner:
            return key


def run_failover(addresses, key, mode):
    """One silent-death failover; returns the time-to-first-item."""
    # Fresh breaker + pool + shared-health state per round: every round
    # must pay the full detection cost.
    reset_breakers()
    pool = ServerPool(addresses)
    churner = _churner_for(pool, mode)
    try:
        piped = _supervised(pool, key)
        start = time.perf_counter()
        it = piped.iterate()
        first = next(it)
        latency = time.perf_counter() - start
        rest = list(it)
    finally:
        if churner is not None:
            churner.close()
    assert [first] + rest == list(range(STREAM))
    return latency


@pytest.mark.parametrize("mode", MODES)
def test_silent_failover_latency_under_churn(benchmark, quiet, live, mode):
    addresses = [quiet.address, live.address]
    key = _key_owned_by(addresses, quiet.address)
    benchmark.group = f"ablation-membership-failover-{mode}"
    benchmark.extra_info["heartbeat"] = HEARTBEAT
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["churn_period"] = (
        CHURN_PERIOD if mode == "churn" else None
    )
    latency = benchmark(lambda: run_failover(addresses, key, mode))
    # The static bound is A11's (detection + one redial in two
    # intervals); churn may add fast-refused ghost dials in front, and
    # may equally well remap the key straight onto the live replica —
    # it must never add a timeout-class wait.
    slack = 0.15 if mode == "churn" else 0.0
    assert latency <= 2 * HEARTBEAT + slack, (
        f"failover took {latency:.3f}s under {mode} "
        f"(bound {2 * HEARTBEAT + slack:.3f}s)"
    )


def run_replay(mode):
    """One mid-stream replica kill under churn; returns delivered."""
    reset_breakers()
    with GeneratorServer() as one, GeneratorServer() as two:
        plan = FaultPlan()
        pool = ServerPool([one.address, two.address], fault_plan=plan)
        victim_address = pool.primary(REPLAY_KEY)
        (victim,) = [s for s in (one, two) if s.address == victim_address]
        plan.kill_server(REPLAY_KEY, victim, on_attempts=(1,), after_items=10)
        churner = _churner_for(pool, mode)
        try:
            piped = _supervised(pool, REPLAY_KEY)
            got = list(piped.iterate())
        finally:
            if churner is not None:
                churner.close()
        # Delivered-prefix preservation under a moving ring: the full
        # sequence, in order, no duplicate from the replay and no gap
        # at the kill point.
        assert got == list(range(STREAM))
        assert pool.stats()["failovers"] >= 1
        return piped.delivered


@pytest.mark.parametrize("mode", MODES)
def test_exactly_once_replay_under_churn(benchmark, mode):
    benchmark.group = f"ablation-membership-replay-{mode}"
    benchmark.extra_info["heartbeat"] = HEARTBEAT
    benchmark.extra_info["mode"] = mode
    delivered = benchmark(lambda: run_replay(mode))
    assert delivered == STREAM


def run_steal(addresses, mode):
    """One DataParallel run with a dropped chunk; returns wall time."""
    reset_breakers()
    plan = FaultPlan()
    plan.drop_connection("mapreduce-task-1", on_attempts=(1,), after_items=1)
    pool = ServerPool(addresses, fault_plan=plan)
    churner = _churner_for(pool, mode)
    data = list(range(40))
    expected = [double(x) for x in data]
    try:
        dp = DataParallel(chunk_size=10, backend="remote", remote_address=pool)
        start = time.perf_counter()
        got = list(dp.map_flat(double, data))
        elapsed = time.perf_counter() - start
    finally:
        if churner is not None:
            churner.close()
    assert got == expected
    assert pool.stats()["steals"] >= 1
    return elapsed


@pytest.mark.parametrize("mode", MODES)
def test_chunk_steal_latency_under_churn(benchmark, mode):
    with GeneratorServer() as one, GeneratorServer() as two:
        addresses = [one.address, two.address]
        benchmark.group = f"ablation-membership-steal-{mode}"
        benchmark.extra_info["mode"] = mode
        benchmark(lambda: run_steal(addresses, mode))
