"""Ablation A1 — output-queue capacity (paper III.B: "Bounding the output
queue buffer size can also be used to throttle a threaded co-expression").

Sweeps the pipe's channel bound for the embedded Pipeline variant:
capacity 1 forces lock-step handoff per element; unbounded (0) lets the
producer run ahead.  The crossover quantifies the synchronization cost of
throttling.
"""

import pytest

from repro.coexpr.coexpression import CoExpression
from repro.coexpr.pipe import Pipe
from repro.bench.workloads import LIGHT

ELEMENTS = 2000


def drain(capacity: int) -> int:
    word_to_number = LIGHT.word_to_number
    hash_number = LIGHT.hash_number

    def producer():
        for i in range(ELEMENTS):
            yield word_to_number(format(i, "x"))

    pipe = Pipe(CoExpression(producer), capacity=capacity)
    count = 0
    for value in pipe:
        hash_number(value)
        count += 1
    return count


@pytest.mark.parametrize("capacity", [1, 4, 16, 64, 256, 0])
def test_queue_capacity_sweep(benchmark, capacity):
    benchmark.group = "ablation-queue-capacity"
    benchmark.extra_info["capacity"] = capacity or "unbounded"
    assert benchmark(lambda: drain(capacity)) == ELEMENTS
