"""Ablation A12 — the optimizing compile target (native Python generators).

Three engines over the same generator-heavy programs:

* **interactive** — `JuniconInterpreter`: per-statement expression
  compilation plus interpreted iterator trees (the script-engine path);
* **interpreted** — `transform_program(optimize=False)`: the whole unit
  compiled once, bodies still interpreted iterator trees;
* **optimized** — `transform_program(optimize=True)`: procedure bodies
  lowered to native Python generator functions
  (:mod:`repro.lang.optimize`), no per-step `IconIterator` allocation.

Workloads: a *light* generator loop (every/suspend over `to`, the shape
the optimizer lowers completely), a *heavy* backtracking conjunction
(nested goal-directed search), and one *remote* pipeline (the optimized
program streamed through a loopback generator server — the wire should
dominate, shrinking the compile-target delta).

Run with JSON export (the CI differential job uploads this artifact)::

    python -m pytest benchmarks/test_ablation_compile.py --benchmark-only \
        --benchmark-json=ablation_compile.json -q
"""

import pytest

from repro.lang.interp import JuniconInterpreter
from repro.lang.transform import transform_program

LIGHT = "def light() { local i; every i := 1 to 500 do suspend i + 1; }"
HEAVY = (
    "def heavy() { local a, b; "
    "suspend (a := 1 to 30) & (b := 1 to 30) & a * b; }"
)

LIGHT_EXPECTED = [i + 1 for i in range(1, 501)]
HEAVY_EXPECTED = [a * b for a in range(1, 31) for b in range(1, 31)]


def _namespace(source: str, optimize: bool) -> dict:
    code = transform_program(source, optimize=optimize)
    namespace: dict = {}
    exec(compile(code, "<ablation-compile>", "exec"), namespace)
    return namespace


def _variants(source: str, entry: str):
    interp = JuniconInterpreter()
    interp.run(source)
    interpreted = _namespace(source, optimize=False)
    optimized = _namespace(source, optimize=True)
    return {
        "interactive": lambda: interp.results(f"{entry}()"),
        "interpreted": lambda: list(interpreted[entry]()),
        "optimized": lambda: list(optimized[entry]()),
    }


LIGHT_VARIANTS = _variants(LIGHT, "light")
HEAVY_VARIANTS = _variants(HEAVY, "heavy")


@pytest.mark.parametrize("engine", ["interactive", "interpreted", "optimized"])
def test_light_generator_loop(benchmark, engine):
    benchmark.group = "ablation-compile-light"
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["results"] = len(LIGHT_EXPECTED)
    assert benchmark(LIGHT_VARIANTS[engine]) == LIGHT_EXPECTED


@pytest.mark.parametrize("engine", ["interactive", "interpreted", "optimized"])
def test_heavy_backtracking(benchmark, engine):
    benchmark.group = "ablation-compile-heavy"
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["results"] = len(HEAVY_EXPECTED)
    assert benchmark(HEAVY_VARIANTS[engine]) == HEAVY_EXPECTED


# -- the remote pipeline bar --------------------------------------------------
#
# The same light program streamed through a loopback generator server.
# Framing + credit flow should dominate, so the optimized bar lands much
# closer to the interpreted one than in the local loops — that *shrinkage*
# is the datum: the compile target accelerates compute, not the wire.


def _serve_program(optimize_flag: str):
    namespace = _namespace(LIGHT, optimize=optimize_flag == "on")
    return namespace["light"]()


@pytest.fixture(scope="module")
def gen_server():
    from repro.net import GeneratorServer

    with GeneratorServer() as server:
        server.register("light", _serve_program)
        yield server


@pytest.mark.parametrize("engine", ["interpreted", "optimized"])
def test_remote_pipeline(benchmark, engine, gen_server):
    from repro.net import RemotePipe

    flag = "on" if engine == "optimized" else "off"

    def drain():
        pipe = RemotePipe(gen_server.address, "light", args=(flag,))
        return list(pipe.iterate())

    benchmark.group = "ablation-compile-remote"
    benchmark.extra_info["engine"] = engine
    assert benchmark(drain) == LIGHT_EXPECTED
